package qserve

import (
	"errors"
	"testing"
	"unicode/utf8"
)

func TestParseRequestJSONAndText(t *testing.T) {
	r, err := ParseRequest("application/json; charset=utf-8",
		[]byte(`{"id":"q1","query":"path a b","limit":5}`))
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "q1" || r.Spec != "path a b" || r.Limit != 5 {
		t.Fatalf("parsed %+v", r)
	}
	r, err = ParseRequest("text/plain", []byte("  cycle a b c \n"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Spec != "cycle a b c" || r.ID != "" || r.Limit != 0 {
		t.Fatalf("parsed %+v", r)
	}
	for _, bad := range []struct {
		ct   string
		body string
	}{
		{"application/json", `{"query":`},
		{"application/json", `{"query":"path a b","nope":1}`},
		{"application/json", `{"query":"path a b","limit":-1}`},
		{"text/plain", "   "},
	} {
		if _, err := ParseRequest(bad.ct, []byte(bad.body)); !errors.Is(err, ErrBadQuery) {
			t.Fatalf("%q %q: err = %v, want ErrBadQuery", bad.ct, bad.body, err)
		}
	}
}

func TestRequestPatternValidation(t *testing.T) {
	if _, err := (Request{Spec: "path a b c"}).Pattern(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "   ", "path a", "frob x y", "graph v0:a v1:b"} {
		if _, err := (Request{Spec: bad}).Pattern(); !errors.Is(err, ErrBadQuery) {
			t.Fatalf("%q: err = %v, want ErrBadQuery", bad, err)
		}
	}
}

// FuzzQueryRequest drives the request codec with arbitrary bytes (must
// never panic) and checks decode(encode(q)) round-trips for every
// encodable request.
func FuzzQueryRequest(f *testing.F) {
	f.Add("q1", "path a b c", 5, []byte(`{"query":"path a b"}`))
	f.Add("", "cycle a b a b", 0, []byte("star c l1 l2"))
	f.Add("x", "graph v0:a v1:b e0-1", 1, []byte{0xff, 0xfe, 0x00})
	f.Add("", "", -3, []byte(`{"query":"path a b","limit":-1}`))
	f.Fuzz(func(t *testing.T, id, spec string, limit int, raw []byte) {
		// Arbitrary bytes through both content types: parse and pattern
		// extraction may fail but must never panic.
		for _, ct := range []string{"application/json", "text/plain", ""} {
			if r, err := ParseRequest(ct, raw); err == nil {
				_, _ = r.Pattern()
			}
		}
		// Round trip. JSON strings cannot carry invalid UTF-8 losslessly
		// (the encoder substitutes U+FFFD), so restrict to valid strings.
		if !utf8.ValidString(id) || !utf8.ValidString(spec) {
			return
		}
		q := Request{ID: id, Spec: spec, Limit: limit}
		back, err := ParseRequest("application/json", EncodeRequest(q))
		if limit < 0 {
			if !errors.Is(err, ErrBadQuery) {
				t.Fatalf("negative limit round-trip: err = %v", err)
			}
			return
		}
		if err != nil {
			t.Fatalf("round-trip decode: %v", err)
		}
		if back != q {
			t.Fatalf("round trip changed the request: %+v -> %+v", q, back)
		}
	})
}
