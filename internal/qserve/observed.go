package qserve

import (
	"sort"
	"strconv"
	"sync"

	"loom/internal/graph"
	"loom/internal/query"
)

// Defaults applied by NewObserved for zero-valued options.
const (
	// DefaultObservedWindow is the number of recorded queries per decay
	// step.
	DefaultObservedWindow = 512
	// DefaultObservedDecay is the weight multiplier applied each window.
	DefaultObservedDecay = 0.5
	// DefaultMaxPatterns caps the workload the tracker reports.
	DefaultMaxPatterns = 32
	// DefaultMinWeight evicts patterns once decay pushes them below it.
	DefaultMinWeight = 0.5
)

// ObservedOptions parameterises the observed-workload tracker.
type ObservedOptions struct {
	// Window is the number of recorded queries between decay steps.
	// Counting queries instead of wall-clock time keeps the tracker
	// deterministic: the same query sequence always yields the same
	// workload. Zero defaults to DefaultObservedWindow.
	Window int
	// Decay multiplies every pattern weight once per window, so the
	// table tracks the recent mix instead of the lifetime mix. Zero
	// defaults to DefaultObservedDecay; must stay in (0, 1).
	Decay float64
	// MaxPatterns caps the workload Workload returns (hottest first).
	// Zero defaults to DefaultMaxPatterns.
	MaxPatterns int
	// MinWeight evicts a pattern once decay pushes its weight below it.
	// Zero defaults to DefaultMinWeight.
	MinWeight float64
}

func (o ObservedOptions) withDefaults() ObservedOptions {
	if o.Window <= 0 {
		o.Window = DefaultObservedWindow
	}
	if o.Decay <= 0 || o.Decay >= 1 {
		o.Decay = DefaultObservedDecay
	}
	if o.MaxPatterns <= 0 {
		o.MaxPatterns = DefaultMaxPatterns
	}
	if o.MinWeight <= 0 {
		o.MinWeight = DefaultMinWeight
	}
	return o
}

type obsPattern struct {
	spec    string
	pattern *graph.Graph
	weight  float64
}

// Observed is a windowed, decayed frequency table of served query
// patterns, keyed by their canonical spec (query.FormatPatternSpec). It
// is the live workload source the serving stack feeds back into LOOM:
// Workload snapshots the current table as a query.Workload for the
// pattern tracker and restream scoring.
type Observed struct {
	mu         sync.Mutex
	opts       ObservedOptions
	served     int64
	sinceDecay int
	pats       map[string]*obsPattern
}

// NewObserved returns an empty tracker.
func NewObserved(opts ObservedOptions) *Observed {
	return &Observed{
		opts: opts.withDefaults(),
		pats: make(map[string]*obsPattern),
	}
}

// Record counts one served query with the given canonical spec and
// pattern. The pattern is deep-copied; the caller keeps ownership of p.
func (o *Observed) Record(spec string, p *graph.Graph) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.served++
	if op, ok := o.pats[spec]; ok {
		op.weight++
	} else {
		o.pats[spec] = &obsPattern{spec: spec, pattern: clonePattern(p), weight: 1}
	}
	o.sinceDecay++
	if o.sinceDecay >= o.opts.Window {
		o.sinceDecay = 0
		o.decayLocked()
	}
}

// decayLocked ages every weight by one window and evicts the cold tail.
func (o *Observed) decayLocked() {
	//loom:orderinvariant per-entry scale+evict; no cross-entry state
	for spec, op := range o.pats {
		op.weight *= o.opts.Decay
		if op.weight < o.opts.MinWeight {
			delete(o.pats, spec)
		}
	}
}

// Served returns the total number of recorded queries.
func (o *Observed) Served() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.served
}

// Patterns returns the number of live (not yet evicted) patterns.
func (o *Observed) Patterns() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.pats)
}

// PatternStat is one row of the tracker's public view.
type PatternStat struct {
	Spec   string  `json:"spec"`
	Weight float64 `json:"weight"`
}

// Top returns up to n patterns ordered by descending weight (ties by
// spec, for determinism).
func (o *Observed) Top(n int) []PatternStat {
	o.mu.Lock()
	ranked := o.rankedLocked()
	o.mu.Unlock()
	if n > 0 && len(ranked) > n {
		ranked = ranked[:n]
	}
	out := make([]PatternStat, len(ranked))
	for i, op := range ranked {
		out[i] = PatternStat{Spec: op.spec, Weight: op.weight}
	}
	return out
}

// rankedLocked returns the live patterns hottest-first.
func (o *Observed) rankedLocked() []*obsPattern {
	ranked := make([]*obsPattern, 0, len(o.pats))
	for _, op := range o.pats {
		ranked = append(ranked, op)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].weight != ranked[j].weight {
			return ranked[i].weight > ranked[j].weight
		}
		return ranked[i].spec < ranked[j].spec
	})
	return ranked
}

// Workload snapshots the hottest MaxPatterns patterns as a
// query.Workload, or nil while the table is empty. The returned workload
// shares nothing with the tracker (patterns are deep-copied with fresh
// interners), so it can cross goroutines — it is handed to the serve
// writer at restream launch via Server.SetWorkloadSource.
func (o *Observed) Workload() *query.Workload {
	o.mu.Lock()
	ranked := o.rankedLocked()
	if len(ranked) > o.opts.MaxPatterns {
		ranked = ranked[:o.opts.MaxPatterns]
	}
	qs := make([]query.Query, len(ranked))
	for i, op := range ranked {
		qs[i] = query.Query{
			ID:      "obs" + strconv.Itoa(i),
			Pattern: clonePattern(op.pattern),
			Weight:  op.weight,
		}
	}
	o.mu.Unlock()
	if len(qs) == 0 {
		return nil
	}
	w, err := query.NewWorkload(qs...)
	if err != nil {
		// Unreachable: specs parsed into connected patterns with positive
		// decayed weights and unique IDs.
		panic(err)
	}
	return w
}

// clonePattern deep-copies p with a fresh interner so the copy can cross
// goroutines (graph.Clone shares the label interner, which is not
// concurrency-safe).
func clonePattern(p *graph.Graph) *graph.Graph {
	c := graph.NewWithCapacity(p.NumVertices())
	for _, v := range p.Vertices() {
		l, _ := p.Label(v)
		c.AddVertex(v, l)
	}
	for _, e := range p.Edges() {
		// Endpoints were just added; AddEdge cannot fail.
		if err := c.AddEdge(e.U, e.V); err != nil {
			panic(err)
		}
	}
	return c
}
