package qserve

import (
	"math/rand"
	"testing"
	"time"

	"loom/internal/core"
	"loom/internal/gen"
	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/query"
	"loom/internal/serve"
	"loom/internal/store"
	"loom/internal/stream"
)

// startServer ingests a deterministic labelled graph into a fresh server
// (drift triggers off unless cfg overrides) and drains it.
func startServer(t *testing.T, n, k int, seed int64, drift serve.DriftConfig) (*serve.Server, *graph.Graph, []graph.Label) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	alphabet := gen.DefaultAlphabet(4)
	g, err := gen.PlantedPartitionDegrees(n, k, 8, 2, &gen.UniformLabeler{Alphabet: alphabet, Rand: r}, r)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	w, err := query.GenerateWorkload(query.DefaultMix(8), alphabet, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	s, err := serve.New(serve.Config{
		Core: core.Config{
			Partition:  partition.Config{K: k, ExpectedVertices: n, Slack: 1.2, Seed: 1},
			WindowSize: 64,
			Threshold:  0.05,
		},
		Workload: w,
		Alphabet: alphabet,
		Drift:    drift,
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	elems, err := stream.FromGraph(g, stream.TemporalOrder, nil)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if err := s.IngestSync(elems); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	return s, g, alphabet
}

// TestQueryParityWithOfflineStore pins the served path to the offline
// evaluator's: a query through the engine returns exactly the matches and
// messages of the same traversal over store.Build(g, Export()).
func TestQueryParityWithOfflineStore(t *testing.T) {
	srv, g, alphabet := startServer(t, 300, 3, 17, serve.DriftConfig{})
	defer srv.Stop()
	e := New(srv, Options{MatchLimit: -1, StaticWorkload: true})

	a, err := srv.Export()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	st, err := store.Build(g, a)
	if err != nil {
		t.Fatalf("build: %v", err)
	}

	specs := []string{
		"path " + string(alphabet[0]) + " " + string(alphabet[1]),
		"path " + string(alphabet[0]) + " " + string(alphabet[1]) + " " + string(alphabet[2]),
		"cycle " + string(alphabet[0]) + " " + string(alphabet[1]) + " " + string(alphabet[2]),
		"star " + string(alphabet[2]) + " " + string(alphabet[0]) + " " + string(alphabet[1]),
	}
	for _, spec := range specs {
		resp, err := e.Query(Request{Spec: spec})
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		p := mustPattern(t, spec)
		off := store.NewEngine(st)
		var want int
		if labels, ok := query.PathLabels(p); ok {
			want, err = off.MatchPath(labels, 0)
		} else {
			want, err = off.MatchPattern(p, 0)
		}
		if err != nil {
			t.Fatalf("%q offline: %v", spec, err)
		}
		if resp.Matches != want {
			t.Errorf("%q: served %d matches, offline %d", spec, resp.Matches, want)
		}
		if os := off.Stats(); resp.Messages != os.Messages ||
			resp.LocalReads != os.LocalReads || resp.RemoteReads != os.RemoteReads {
			t.Errorf("%q: served cost %+v, offline %+v", spec, resp, os)
		}
	}

	// Serving is deterministic: the same query replays bit-identically.
	r1, _ := e.Query(Request{Spec: specs[1]})
	r2, _ := e.Query(Request{Spec: specs[1]})
	if r1 != r2 {
		t.Fatalf("served query not deterministic: %+v vs %+v", r1, r2)
	}
}

func TestQueryLimitAndErrors(t *testing.T) {
	srv, _, alphabet := startServer(t, 200, 2, 23, serve.DriftConfig{})
	defer srv.Stop()
	e := New(srv, Options{MatchLimit: 10, StaticWorkload: true})

	spec := "path " + string(alphabet[0]) + " " + string(alphabet[1])
	resp, err := e.Query(Request{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Limit != 10 || resp.Matches > 10 {
		t.Fatalf("resp %+v, want limit 10 honoured", resp)
	}
	// A request can tighten the limit but not lift it.
	resp, err = e.Query(Request{Spec: spec, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Limit != 2 || resp.Matches > 2 {
		t.Fatalf("resp %+v, want request limit 2", resp)
	}
	resp, err = e.Query(Request{Spec: spec, Limit: 50})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Limit != 10 {
		t.Fatalf("resp %+v: request lifted the engine limit", resp)
	}
	if _, err := e.Query(Request{Spec: "frob a b"}); err == nil {
		t.Fatal("bad spec must fail")
	}
}

// TestReplicationLoop checks the third feedback loop: remote fetches
// accumulate heat, a refresh spends the replica budget on it, and the
// same query then crosses fewer shard boundaries with the same result.
func TestReplicationLoop(t *testing.T) {
	srv, _, alphabet := startServer(t, 300, 3, 29, serve.DriftConfig{})
	defer srv.Stop()
	e := New(srv, Options{MatchLimit: -1, ReplicaBudget: 16, StaticWorkload: true})

	spec := "path " + string(alphabet[0]) + " " + string(alphabet[1]) + " " + string(alphabet[2])
	before, err := e.Query(Request{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if before.Messages == 0 {
		t.Skip("no cross-shard traffic for this layout")
	}
	if err := e.Refresh(); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	st := e.Stats()
	if st.ViewReplicas == 0 {
		t.Fatal("refresh placed no replicas despite observed heat")
	}
	if st.ViewGeneration != 2 {
		t.Fatalf("view generation = %d, want 2", st.ViewGeneration)
	}
	after, err := e.Query(Request{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if after.Matches != before.Matches {
		t.Fatalf("replicas changed the result: %d vs %d", after.Matches, before.Matches)
	}
	if after.Messages >= before.Messages {
		t.Fatalf("messages did not drop: %d -> %d", before.Messages, after.Messages)
	}
	if after.ReplicaReads == 0 {
		t.Fatal("no replica reads after replication")
	}
}

// TestWorkloadTriggerFiresRestream closes the drift loop from the query
// side: queries alone (no ingest) push the message rate over the
// threshold, the engine fires a workload restream, and the server adopts
// an observed-workload assignment.
func TestWorkloadTriggerFiresRestream(t *testing.T) {
	srv, _, alphabet := startServer(t, 400, 2, 31, serve.DriftConfig{
		MaxMessagesPerQuery: 0.001, // any cross-shard traffic trips it
		QueryWindow:         8,
	})
	defer srv.Stop()
	e := New(srv, Options{MatchLimit: -1})

	spec := "path " + string(alphabet[0]) + " " + string(alphabet[1])
	deadline := time.Now().Add(30 * time.Second)
	for srv.Stats().Restreams == 0 {
		resp, err := e.Query(Request{Spec: spec})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Messages == 0 {
			t.Skip("no cross-shard traffic for this layout")
		}
		if time.Now().After(deadline) {
			t.Fatalf("workload restream never fired: %+v", e.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	// Let the background goroutine finish its post-restream refresh.
	for e.Stats().ViewGeneration < 2 && !time.Now().After(deadline) {
		time.Sleep(time.Millisecond)
	}
	rep := srv.Stats().LastRestream
	if rep == nil || rep.Trigger != "workload" {
		t.Fatalf("report = %+v, want workload trigger", rep)
	}
	if rep.WorkloadSource != "observed" {
		t.Fatalf("report = %+v, want observed workload source", rep)
	}
	st := e.Stats()
	if st.WorkloadTriggers == 0 || !st.RateValid || st.MsgsPerQuery <= 0 {
		t.Fatalf("engine stats %+v", st)
	}
	if st.ObservedPatterns == 0 || st.ObservedServed == 0 {
		t.Fatalf("tracker never recorded: %+v", st)
	}
}

// TestRefreshDropsRemovedVertices pins the deletion path through the view
// pipeline: once the server applies remove-edge / remove-vertex elements,
// the next Refresh must rebuild a store in which the removed structure no
// longer matches queries — stale views may keep answering until then, but
// never after.
func TestRefreshDropsRemovedVertices(t *testing.T) {
	alphabet := gen.DefaultAlphabet(4)
	w, err := query.GenerateWorkload(query.DefaultMix(8), alphabet, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	srv, err := serve.New(serve.Config{
		Core: core.Config{
			Partition:  partition.Config{K: 2, ExpectedVertices: 16, Slack: 1.5, Seed: 1},
			WindowSize: 8,
			Threshold:  0.05,
		},
		Workload: w,
		Alphabet: alphabet,
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer srv.Stop()

	// A single labelled path 1:a - 2:b - 3:c.
	if err := srv.IngestSync([]stream.Element{
		{Kind: stream.VertexElement, V: 1, Label: "a"},
		{Kind: stream.VertexElement, V: 2, Label: "b"},
		{Kind: stream.VertexElement, V: 3, Label: "c"},
		{Kind: stream.EdgeElement, V: 1, U: 2},
		{Kind: stream.EdgeElement, V: 2, U: 3},
	}); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if err := srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	e := New(srv, Options{MatchLimit: -1, StaticWorkload: true})
	matches := func(spec string) int {
		t.Helper()
		resp, err := e.Query(Request{Spec: spec})
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		return resp.Matches
	}
	if got := matches("path a b c"); got == 0 {
		t.Fatal("path a b c should match before any removal")
	}

	// Deleting edge {2,3} severs the 3-path but leaves the 2-path.
	if err := srv.IngestSync([]stream.Element{{Kind: stream.RemoveEdgeElement, V: 2, U: 3}}); err != nil {
		t.Fatalf("remove edge: %v", err)
	}
	if err := e.Refresh(); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	if got := matches("path a b c"); got != 0 {
		t.Fatalf("path a b c matches %d times after its edge was removed", got)
	}
	if got := matches("path a b"); got == 0 {
		t.Fatal("path a b should survive the {2,3} edge removal")
	}

	// Deleting vertex 2 kills the remaining match; the removed vertex must
	// also stop resolving through the placement path.
	if err := srv.IngestSync([]stream.Element{{Kind: stream.RemoveVertexElement, V: 2}}); err != nil {
		t.Fatalf("remove vertex: %v", err)
	}
	if err := e.Refresh(); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	if got := matches("path a b"); got != 0 {
		t.Fatalf("path a b matches %d times after vertex 2 was removed", got)
	}
	if _, ok := srv.Where(2); ok {
		t.Fatal("Where(2) still resolves after removal")
	}
}
