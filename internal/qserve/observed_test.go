package qserve

import (
	"testing"

	"loom/internal/graph"
	"loom/internal/query"
)

func mustPattern(t *testing.T, spec string) *graph.Graph {
	t.Helper()
	p, err := query.ParsePatternSpec(spec)
	if err != nil {
		t.Fatalf("parse %q: %v", spec, err)
	}
	return p
}

func TestObservedWorkloadRanking(t *testing.T) {
	o := NewObserved(ObservedOptions{})
	if o.Workload() != nil {
		t.Fatal("empty tracker should report a nil workload")
	}
	hot := mustPattern(t, "path a b c")
	cold := mustPattern(t, "cycle a b c")
	for i := 0; i < 5; i++ {
		o.Record(query.FormatPatternSpec(hot), hot)
	}
	o.Record(query.FormatPatternSpec(cold), cold)

	w := o.Workload()
	if w == nil || w.Len() != 2 {
		t.Fatalf("workload = %v", w)
	}
	qs := w.Queries()
	if qs[0].ID != "obs0" || qs[0].Weight != 5 || !qs[0].Pattern.Equal(hot) {
		t.Fatalf("hottest = %+v", qs[0])
	}
	if qs[1].ID != "obs1" || qs[1].Weight != 1 {
		t.Fatalf("second = %+v", qs[1])
	}
	// The workload is detached: mutating it must not reach the tracker.
	qs[0].Pattern.AddVertex(99, "zz")
	if w2 := o.Workload(); w2.Queries()[0].Pattern.NumVertices() != 3 {
		t.Fatal("workload shares pattern storage with the tracker")
	}
	if o.Served() != 6 || o.Patterns() != 2 {
		t.Fatalf("served=%d patterns=%d", o.Served(), o.Patterns())
	}
}

func TestObservedDecayEvictsColdPatterns(t *testing.T) {
	// Window 4, decay 0.5, eviction below 0.5: a pattern served once is
	// gone after two windows without further traffic.
	o := NewObserved(ObservedOptions{Window: 4, Decay: 0.5, MinWeight: 0.5})
	cold := mustPattern(t, "star c l1 l2")
	hot := mustPattern(t, "path a b")
	o.Record(query.FormatPatternSpec(cold), cold)
	for i := 0; i < 7; i++ {
		o.Record(query.FormatPatternSpec(hot), hot)
	}
	// Two windows elapsed: cold's weight is 1*0.5*0.5 = 0.25 < 0.5.
	if got := o.Patterns(); got != 1 {
		t.Fatalf("patterns = %d, want 1 (cold evicted)", got)
	}
	top := o.Top(8)
	if len(top) != 1 || top[0].Spec != query.FormatPatternSpec(hot) {
		t.Fatalf("top = %+v", top)
	}
}

func TestObservedMaxPatternsCap(t *testing.T) {
	o := NewObserved(ObservedOptions{MaxPatterns: 2})
	specs := []string{"path a b", "path b c", "path c d"}
	for i, s := range specs {
		p := mustPattern(t, s)
		for j := 0; j <= i; j++ { // later specs are hotter
			o.Record(query.FormatPatternSpec(p), p)
		}
	}
	w := o.Workload()
	if w.Len() != 2 {
		t.Fatalf("workload len = %d, want cap 2", w.Len())
	}
	if qs := w.Queries(); qs[0].Weight != 3 || qs[1].Weight != 2 {
		t.Fatalf("kept weights %v/%v, want the two hottest", qs[0].Weight, qs[1].Weight)
	}
}

func TestObservedDeterministicTieBreak(t *testing.T) {
	// Equal weights rank by spec; the workload is reproducible.
	o := NewObserved(ObservedOptions{})
	for _, s := range []string{"path b c", "path a b", "cycle a b c"} {
		p := mustPattern(t, s)
		o.Record(query.FormatPatternSpec(p), p)
	}
	w1, w2 := o.Workload(), o.Workload()
	q1, q2 := w1.Queries(), w2.Queries()
	for i := range q1 {
		if q1[i].ID != q2[i].ID || !q1[i].Pattern.Equal(q2[i].Pattern) {
			t.Fatalf("workload snapshot not deterministic at %d", i)
		}
	}
	for i := 1; i < len(q1); i++ {
		if query.FormatPatternSpec(q1[i-1].Pattern) >= query.FormatPatternSpec(q1[i].Pattern) {
			t.Fatalf("equal-weight patterns not spec-ordered: %d", i)
		}
	}
}
