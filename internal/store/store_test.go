package store

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"loom/internal/graph"
	"loom/internal/partition"
)

// fig1Store deploys the Fig.1 graph with the square {1,2,5,6} on shard 0.
func fig1Store(t *testing.T) (*Store, *graph.Graph) {
	t.Helper()
	g := graph.Fig1Graph()
	a := partition.MustNewAssignment(2)
	for _, v := range []graph.VertexID{1, 2, 5, 6} {
		if err := a.Set(v, 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range []graph.VertexID{3, 4, 7, 8} {
		if err := a.Set(v, 1); err != nil {
			t.Fatal(err)
		}
	}
	st, err := Build(g, a)
	if err != nil {
		t.Fatal(err)
	}
	return st, g
}

func TestBuildRequiresFullAssignment(t *testing.T) {
	g := graph.Path("a", "b")
	a := partition.MustNewAssignment(2)
	if _, err := Build(g, a); err == nil {
		t.Fatal("unassigned vertex should be rejected")
	}
}

func TestBuildShardContents(t *testing.T) {
	st, g := fig1Store(t)
	if st.NumShards() != 2 {
		t.Fatalf("shards = %d", st.NumShards())
	}
	if st.Shard(0).NumVertices() != 4 || st.Shard(1).NumVertices() != 4 {
		t.Fatal("shard vertex counts wrong")
	}
	if home, ok := st.Home(1); !ok || home != 0 {
		t.Fatalf("Home(1) = %d,%v", home, ok)
	}
	if _, ok := st.Home(99); ok {
		t.Fatal("unknown vertex should have no home")
	}
	// Cut edges between {1,2,5,6} and {3,4,7,8}: edges 2-3 and ... check
	// against assignment-based count.
	a := partition.MustNewAssignment(2)
	for _, v := range []graph.VertexID{1, 2, 5, 6} {
		_ = a.Set(v, 0)
	}
	for _, v := range []graph.VertexID{3, 4, 7, 8} {
		_ = a.Set(v, 1)
	}
	if st.CutEdges() != a.CutEdges(g) {
		t.Fatalf("store cut %d != assignment cut %d", st.CutEdges(), a.CutEdges(g))
	}
}

func TestEngineKHopCountsMessages(t *testing.T) {
	st, g := fig1Store(t)
	e := NewEngine(st)
	// 1-hop from vertex 1 (shard 0): neighbours 2, 5 — all local, read of
	// vertex 1 itself is local. No messages.
	out, err := e.KHop(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]graph.VertexID{1}, g.Neighbors(1)...)
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("KHop(1,1) = %v, want %v", out, want)
	}
	if e.Stats().Messages != 0 {
		t.Fatalf("messages = %d, want 0 (local hop)", e.Stats().Messages)
	}
	// 2-hop from 1 expands 2 and 5: both local; vertex 3 appears (on
	// shard 1) but its adjacency is only read at depth 2... KHop(1,2)
	// reads 1,2,5 (local) — still 0 messages; visiting refs is free.
	e.ResetStats()
	if _, err := e.KHop(1, 2); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Messages != 0 {
		t.Fatalf("messages = %d, want 0 (only local reads at depth<2)", e.Stats().Messages)
	}
	// 3-hop from 1 must read vertex 3 and 6's neighbours... vertex 3 is
	// remote: at least one message.
	e.ResetStats()
	if _, err := e.KHop(1, 3); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Messages == 0 {
		t.Fatal("3-hop crosses to shard 1; expected messages")
	}
}

func TestEngineKHopUnknownStart(t *testing.T) {
	st, _ := fig1Store(t)
	if _, err := NewEngine(st).KHop(42, 1); err == nil {
		t.Fatal("unknown start should error")
	}
}

func TestEngineLabelReads(t *testing.T) {
	st, _ := fig1Store(t)
	e := NewEngine(st)
	l, at, err := e.Label(0, 1)
	if err != nil || l != "a" || at != 0 {
		t.Fatalf("Label(0,1) = %s,%d,%v", l, at, err)
	}
	if e.Stats().LocalReads != 1 || e.Stats().Messages != 0 {
		t.Fatalf("stats = %+v", e.Stats())
	}
	// Remote label read costs a message and moves execution.
	l, at, err = e.Label(0, 3)
	if err != nil || l != "c" || at != 1 {
		t.Fatalf("Label(0,3) = %s,%d,%v", l, at, err)
	}
	if e.Stats().Messages != 1 {
		t.Fatalf("messages = %d, want 1", e.Stats().Messages)
	}
	if _, _, err := e.Label(0, 42); err == nil {
		t.Fatal("unknown vertex should error")
	}
}

func TestMatchPathCountsAndMessages(t *testing.T) {
	st, _ := fig1Store(t)
	e := NewEngine(st)
	// abc paths in Fig.1: 1-2-3 and 6-2-3.
	n, err := e.MatchPath([]graph.Label{"a", "b", "c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("abc instances = %d, want 2", n)
	}
	if e.Stats().Messages == 0 {
		t.Fatal("the 2-3 hop crosses shards; expected messages")
	}
	// Empty labels.
	if n, err := e.MatchPath(nil, 0); err != nil || n != 0 {
		t.Fatalf("empty path = %d,%v", n, err)
	}
	// Limit respected.
	if n, err := e.MatchPath([]graph.Label{"a", "b", "c"}, 1); err != nil || n != 1 {
		t.Fatalf("limited = %d,%v", n, err)
	}
}

func TestReplicationCutsMessages(t *testing.T) {
	st, _ := fig1Store(t)
	e := NewEngine(st)
	if _, err := e.MatchPath([]graph.Label{"a", "b", "c"}, 0); err != nil {
		t.Fatal(err)
	}
	before := e.Stats().Messages
	if before == 0 {
		t.Fatal("baseline should cross shards")
	}
	// Replicate vertex 3 (label c, shard 1) onto shard 0.
	if !st.Replicate(3, 0) {
		t.Fatal("Replicate(3,0) should place a replica")
	}
	if st.Replicate(3, 0) {
		t.Fatal("duplicate replica should be a no-op")
	}
	if st.Replicate(3, 1) {
		t.Fatal("replicating onto home shard should be a no-op")
	}
	if st.TotalReplicas() != 1 || st.Shard(0).NumReplicas() != 1 {
		t.Fatal("replica accounting wrong")
	}
	e2 := NewEngine(st)
	if _, err := e2.MatchPath([]graph.Label{"a", "b", "c"}, 0); err != nil {
		t.Fatal(err)
	}
	after := e2.Stats().Messages
	if after >= before {
		t.Fatalf("replication should cut messages: %d -> %d", before, after)
	}
	if e2.Stats().ReplicaReads == 0 {
		t.Fatal("replica reads should be recorded")
	}
}

func TestAdvisorPicksHottestBoundary(t *testing.T) {
	st, _ := fig1Store(t)
	adv := NewAdvisor(st)
	adv.Observe(3, 0)
	adv.Observe(3, 0)
	adv.Observe(7, 0)
	hs := adv.Hotspots()
	if len(hs) != 2 || hs[0].V != 3 || hs[0].Heat != 2 {
		t.Fatalf("hotspots = %+v", hs)
	}
	placed := adv.Apply(1)
	if placed != 1 {
		t.Fatalf("placed = %d, want 1", placed)
	}
	if st.Shard(0).NumReplicas() != 1 {
		t.Fatal("the hottest vertex should be replicated onto shard 0")
	}
	// Budget larger than candidates.
	placed = adv.Apply(10)
	if placed != 1 {
		t.Fatalf("second apply placed = %d, want 1 (vertex 7)", placed)
	}
}

func TestInstrumentedEngineFeedsAdvisor(t *testing.T) {
	st, _ := fig1Store(t)
	adv := NewAdvisor(st)
	e := NewInstrumentedEngine(st, adv)
	if _, err := e.KHop(1, 3); err != nil {
		t.Fatal(err)
	}
	if len(adv.Hotspots()) == 0 {
		t.Fatal("3-hop crossing shards should produce hotspot observations")
	}
}

func TestPropertyStoreMatchesAssignment(t *testing.T) {
	// For random graphs and assignments: store cut == assignment cut, and
	// KHop visits exactly the BFS ball regardless of sharding.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 8 + r.Intn(20)
		g := graph.New()
		for i := 0; i < n; i++ {
			g.AddVertex(graph.VertexID(i), graph.Label([]string{"a", "b"}[r.Intn(2)]))
		}
		for i := 1; i < n; i++ {
			if err := g.AddEdge(graph.VertexID(r.Intn(i)), graph.VertexID(i)); err != nil {
				return false
			}
		}
		k := 2 + r.Intn(3)
		a := partition.MustNewAssignment(k)
		for i := 0; i < n; i++ {
			if err := a.Set(graph.VertexID(i), partition.ID(r.Intn(k))); err != nil {
				return false
			}
		}
		st, err := Build(g, a)
		if err != nil {
			return false
		}
		if st.CutEdges() != a.CutEdges(g) {
			return false
		}
		e := NewEngine(st)
		start := graph.VertexID(r.Intn(n))
		depth := 1 + r.Intn(3)
		got, err := e.KHop(start, depth)
		if err != nil {
			return false
		}
		// Reference: central BFS truncated at depth.
		want := centralKHop(g, start, depth)
		if len(got) != len(want) {
			return false
		}
		gotSet := map[graph.VertexID]bool{}
		for _, v := range got {
			gotSet[v] = true
		}
		for _, v := range want {
			if !gotSet[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func centralKHop(g *graph.Graph, start graph.VertexID, k int) []graph.VertexID {
	type item struct {
		v graph.VertexID
		d int
	}
	visited := map[graph.VertexID]struct{}{start: {}}
	out := []graph.VertexID{start}
	queue := []item{{start, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.d == k {
			continue
		}
		for _, u := range g.Neighbors(cur.v) {
			if _, seen := visited[u]; !seen {
				visited[u] = struct{}{}
				out = append(out, u)
				queue = append(queue, item{u, cur.d + 1})
			}
		}
	}
	return out
}
