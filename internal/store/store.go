// Package store is the sharded graph storage substrate: the deployment a
// partitioning actually runs in (paper §1's distributed GDBMS, e.g.
// Titan). Where package cluster instruments a centralised matcher to
// measure traversal probabilities, store materialises one shard per
// partition — local vertices, local adjacency, remote references for cut
// edges — and executes traversals shard by shard, counting every
// cross-shard message. It also implements the hotspot-replication layer of
// Yang et al. (paper §3.2), which the paper argues complements LOOM:
// read-only replicas of frequently crossed boundary vertices absorb remote
// reads.
package store

import (
	"fmt"
	"sort"

	"loom/internal/graph"
	"loom/internal/partition"
)

// Ref points at a neighbouring vertex together with the shard that owns
// it, so traversals know whether following the edge leaves the shard.
type Ref struct {
	V    graph.VertexID
	Home partition.ID
}

// Shard holds one partition's vertices and their adjacency.
type Shard struct {
	id     partition.ID
	labels map[graph.VertexID]graph.Label
	adj    map[graph.VertexID][]Ref
	// replicas are read-only copies of remote vertices placed here by the
	// replication layer: label plus adjacency refs.
	replicas map[graph.VertexID]replica
}

type replica struct {
	label graph.Label
	adj   []Ref
}

// ID returns the shard's partition ID.
func (s *Shard) ID() partition.ID { return s.id }

// NumVertices returns the number of owned (non-replica) vertices.
func (s *Shard) NumVertices() int { return len(s.labels) }

// NumReplicas returns the number of replicated vertices hosted here.
func (s *Shard) NumReplicas() int { return len(s.replicas) }

// Store is a graph deployed across shards according to an assignment.
type Store struct {
	shards []*Shard
	home   map[graph.VertexID]partition.ID
}

// Build deploys g across a.K() shards per assignment a. Every vertex must
// be assigned.
func Build(g *graph.Graph, a *partition.Assignment) (*Store, error) {
	st := &Store{
		shards: make([]*Shard, a.K()),
		home:   make(map[graph.VertexID]partition.ID, g.NumVertices()),
	}
	for i := range st.shards {
		st.shards[i] = &Shard{
			id:       partition.ID(i),
			labels:   make(map[graph.VertexID]graph.Label),
			adj:      make(map[graph.VertexID][]Ref),
			replicas: make(map[graph.VertexID]replica),
		}
	}
	for _, v := range g.Vertices() {
		p := a.Get(v)
		if p == partition.Unassigned {
			return nil, fmt.Errorf("store: vertex %d unassigned", v)
		}
		st.home[v] = p
		l, _ := g.Label(v)
		st.shards[p].labels[v] = l
	}
	for _, v := range g.Vertices() {
		p := st.home[v]
		refs := make([]Ref, 0, g.Degree(v))
		for _, u := range g.Neighbors(v) {
			refs = append(refs, Ref{V: u, Home: st.home[u]})
		}
		st.shards[p].adj[v] = refs
	}
	return st, nil
}

// NumShards returns the shard count.
func (st *Store) NumShards() int { return len(st.shards) }

// Shard returns shard p.
func (st *Store) Shard(p partition.ID) *Shard { return st.shards[p] }

// Home returns the owning shard of v and whether v exists.
func (st *Store) Home(v graph.VertexID) (partition.ID, bool) {
	p, ok := st.home[v]
	return p, ok
}

// CutEdges counts edges whose endpoints live on different shards
// (replicas do not change ownership). Each edge is stored on both
// endpoints' shards; counting only from the lower-ID endpoint tallies
// every cut edge exactly once.
func (st *Store) CutEdges() int {
	cut := 0
	for _, sh := range st.shards {
		for v, refs := range sh.adj {
			for _, r := range refs {
				if r.Home != sh.id && v < r.V {
					cut++
				}
			}
		}
	}
	return cut
}

// Replicate places a read-only copy of v (label + adjacency) on shard p.
// Replicating a vertex onto its home shard is a no-op. It reports whether
// a new replica was created.
func (st *Store) Replicate(v graph.VertexID, p partition.ID) bool {
	home, ok := st.home[v]
	if !ok || home == p {
		return false
	}
	sh := st.shards[p]
	if _, dup := sh.replicas[v]; dup {
		return false
	}
	src := st.shards[home]
	sh.replicas[v] = replica{label: src.labels[v], adj: src.adj[v]}
	return true
}

// TotalReplicas returns the number of replicas across all shards.
func (st *Store) TotalReplicas() int {
	n := 0
	for _, sh := range st.shards {
		n += len(sh.replicas)
	}
	return n
}

// Stats counts storage-level operations of an Engine.
type Stats struct {
	LocalReads   int // vertex reads served by the current shard (owned or replica)
	RemoteReads  int // vertex reads requiring another shard
	ReplicaReads int // subset of LocalReads served by a replica
	Messages     int // cross-shard messages (one per remote read)
}

// Engine executes traversals against the store, tracking which shard the
// execution is currently "at" and charging a message whenever it must
// fetch a vertex another shard owns (and no local replica exists).
type Engine struct {
	st       *Store
	stats    Stats
	observer func(v graph.VertexID, from partition.ID)
}

// NewEngine returns an engine over st.
func NewEngine(st *Store) *Engine { return &Engine{st: st} }

// Stats returns a copy of the operation counters.
func (e *Engine) Stats() Stats { return e.stats }

// ResetStats zeroes the counters.
func (e *Engine) ResetStats() { e.stats = Stats{} }

// SetObserver registers a callback invoked on every remote fetch with the
// fetched vertex and the shard that needed it; the replication Advisor
// uses it to find hotspots.
func (e *Engine) SetObserver(fn func(v graph.VertexID, from partition.ID)) {
	e.observer = fn
}

// read fetches v's adjacency as seen from shard at, charging the
// appropriate counter, and returns the refs plus the shard the execution
// is at afterwards (remote reads move execution to the owning shard).
func (e *Engine) read(at partition.ID, v graph.VertexID) ([]Ref, partition.ID, error) {
	sh := e.st.shards[at]
	if refs, owned := sh.adj[v]; owned {
		e.stats.LocalReads++
		return refs, at, nil
	}
	if rep, ok := sh.replicas[v]; ok {
		e.stats.LocalReads++
		e.stats.ReplicaReads++
		return rep.adj, at, nil
	}
	home, ok := e.st.home[v]
	if !ok {
		return nil, at, fmt.Errorf("store: vertex %d does not exist", v)
	}
	e.stats.RemoteReads++
	e.stats.Messages++
	if e.observer != nil {
		e.observer(v, at)
	}
	return e.st.shards[home].adj[v], home, nil
}

// Label reads v's label from shard at under the same cost model.
func (e *Engine) Label(at partition.ID, v graph.VertexID) (graph.Label, partition.ID, error) {
	sh := e.st.shards[at]
	if l, owned := sh.labels[v]; owned {
		e.stats.LocalReads++
		return l, at, nil
	}
	if rep, ok := sh.replicas[v]; ok {
		e.stats.LocalReads++
		e.stats.ReplicaReads++
		return rep.label, at, nil
	}
	home, ok := e.st.home[v]
	if !ok {
		return "", at, fmt.Errorf("store: vertex %d does not exist", v)
	}
	e.stats.RemoteReads++
	e.stats.Messages++
	if e.observer != nil {
		e.observer(v, at)
	}
	return e.st.shards[home].labels[v], home, nil
}

// KHop performs a breadth-first exploration of radius k from start,
// returning the visited vertices in BFS order. Execution starts at
// start's home shard; every hop to a vertex whose data is not local to
// the current shard costs a message.
func (e *Engine) KHop(start graph.VertexID, k int) ([]graph.VertexID, error) {
	home, ok := e.st.home[start]
	if !ok {
		return nil, fmt.Errorf("store: vertex %d does not exist", start)
	}
	type item struct {
		v     graph.VertexID
		depth int
	}
	visited := map[graph.VertexID]struct{}{start: {}}
	order := []graph.VertexID{start}
	queue := []item{{v: start, depth: 0}}
	at := home
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.depth == k {
			continue
		}
		refs, now, err := e.read(at, cur.v)
		if err != nil {
			return nil, err
		}
		at = now
		// Deterministic expansion order.
		sorted := append([]Ref(nil), refs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].V < sorted[j].V })
		for _, r := range sorted {
			if _, seen := visited[r.V]; seen {
				continue
			}
			visited[r.V] = struct{}{}
			order = append(order, r.V)
			queue = append(queue, item{v: r.V, depth: cur.depth + 1})
		}
	}
	return order, nil
}

// MatchPath finds label-constrained path instances: sequences of distinct
// vertices v0-v1-...-vL whose labels equal labels and whose consecutive
// pairs are edges. It walks the store shard by shard (the execution model
// of an online GDBMS traversal), charging messages per remote hop, and
// returns the number of instances found (capped by limit when limit > 0).
func (e *Engine) MatchPath(labels []graph.Label, limit int) (int, error) {
	if len(labels) == 0 {
		return 0, nil
	}
	count := 0
	// Anchor scan: every shard scans its own vertices for label[0] — no
	// messages; index lookups are local.
	for _, sh := range e.st.shards {
		anchors := make([]graph.VertexID, 0)
		for v, l := range sh.labels {
			if l == labels[0] {
				anchors = append(anchors, v)
			}
		}
		sort.Slice(anchors, func(i, j int) bool { return anchors[i] < anchors[j] })
		for _, a := range anchors {
			n, err := e.extendPath(sh.id, []graph.VertexID{a}, labels, limit-count)
			if err != nil {
				return count, err
			}
			count += n
			if limit > 0 && count >= limit {
				return count, nil
			}
		}
	}
	return count, nil
}

// extendPath recursively extends a partial path; at is the shard where
// execution currently resides.
func (e *Engine) extendPath(at partition.ID, path []graph.VertexID, labels []graph.Label, budget int) (int, error) {
	if len(path) == len(labels) {
		return 1, nil
	}
	tip := path[len(path)-1]
	refs, now, err := e.read(at, tip)
	if err != nil {
		return 0, err
	}
	sorted := append([]Ref(nil), refs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].V < sorted[j].V })
	count := 0
	for _, r := range sorted {
		if containsVertex(path, r.V) {
			continue
		}
		l, now2, err := e.Label(now, r.V)
		if err != nil {
			return count, err
		}
		if l != labels[len(path)] {
			continue
		}
		n, err := e.extendPath(now2, append(path, r.V), labels, budget-count)
		if err != nil {
			return count, err
		}
		count += n
		if budget > 0 && count >= budget {
			return count, nil
		}
	}
	return count, nil
}

func containsVertex(path []graph.VertexID, v graph.VertexID) bool {
	for _, p := range path {
		if p == v {
			return true
		}
	}
	return false
}
