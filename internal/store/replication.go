package store

import (
	"sort"

	"loom/internal/graph"
	"loom/internal/partition"
)

// Advisor implements the hotspot-replication strategy of Yang et al.
// (paper §3.2): observe which boundary vertices are fetched remotely most
// often, and replicate the hottest ones into the shards that keep fetching
// them, within a replica budget. The paper argues LOOM complements this
// mechanism — a workload-aware initial partitioning leaves fewer hotspots
// for replication to patch, so the same budget goes further.
type Advisor struct {
	st *Store
	// heat counts remote fetches per (vertex, requesting shard).
	heat map[heatKey]int
}

type heatKey struct {
	v    graph.VertexID
	from partition.ID
}

// NewAdvisor returns an Advisor over st.
func NewAdvisor(st *Store) *Advisor {
	return &Advisor{st: st, heat: make(map[heatKey]int)}
}

// Observe records that shard from fetched vertex v remotely. Engines call
// it via Instrument, or callers can replay traces.
func (a *Advisor) Observe(v graph.VertexID, from partition.ID) {
	a.heat[heatKey{v: v, from: from}]++
}

// Add records n remote fetches of v by shard from at once, so a caller
// that aggregated heat externally (e.g. across the view generations of
// an online serving engine) can seed a fresh Advisor without replaying
// the trace fetch by fetch. n <= 0 is a no-op.
func (a *Advisor) Add(v graph.VertexID, from partition.ID, n int) {
	if n <= 0 {
		return
	}
	a.heat[heatKey{v: v, from: from}] += n
}

// Hotspot is a replication candidate.
type Hotspot struct {
	V    graph.VertexID
	From partition.ID // the shard that keeps fetching V
	Heat int          // remote fetches observed
}

// Hotspots returns the observed candidates ordered by descending heat
// (ties by vertex then shard, for determinism).
func (a *Advisor) Hotspots() []Hotspot {
	out := make([]Hotspot, 0, len(a.heat))
	for k, h := range a.heat {
		out = append(out, Hotspot{V: k.v, From: k.from, Heat: h})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Heat != out[j].Heat {
			return out[i].Heat > out[j].Heat
		}
		if out[i].V != out[j].V {
			return out[i].V < out[j].V
		}
		return out[i].From < out[j].From
	})
	return out
}

// Apply replicates the hottest candidates until budget replicas have been
// placed (or candidates run out), returning how many were placed.
func (a *Advisor) Apply(budget int) int {
	placed := 0
	for _, h := range a.Hotspots() {
		if placed >= budget {
			break
		}
		if a.st.Replicate(h.V, h.From) {
			placed++
		}
	}
	return placed
}

// NewInstrumentedEngine returns an engine whose remote reads feed the
// advisor's hotspot counters.
func NewInstrumentedEngine(st *Store, advisor *Advisor) *Engine {
	e := NewEngine(st)
	e.SetObserver(advisor.Observe)
	return e
}
