package store

import (
	"fmt"
	"sort"

	"loom/internal/graph"
	"loom/internal/partition"
)

// MatchPattern finds embeddings of an arbitrary connected labelled
// pattern: injective mappings of the pattern's vertices onto distinct
// store vertices with matching labels, such that every pattern edge maps
// onto a store edge (subgraph homomorphism on distinct vertices — the
// same semantics as MatchPath, which counts a symmetric path once per
// direction). Like MatchPath it walks the store shard by shard under the
// online traversal cost model: anchors are found by local label scans,
// every candidate's label is read through the engine (charged when
// remote), and a bound vertex's adjacency is fetched once and carried in
// the traversal state, so edge checks against already-fetched lists are
// free. The count is capped by limit when limit > 0.
func (e *Engine) MatchPattern(p *graph.Graph, limit int) (int, error) {
	if p == nil || p.NumVertices() == 0 {
		return 0, nil
	}
	plan, err := planPattern(p)
	if err != nil {
		return 0, err
	}
	m := &patternMatcher{
		eng:    e,
		plan:   plan,
		mapped: make([]graph.VertexID, len(plan.order)),
		refs:   make([][]Ref, len(plan.order)),
	}
	count := 0
	// Anchor scan: every shard scans its own vertices for the root label —
	// no messages; index lookups are local.
	for _, sh := range e.st.shards {
		anchors := make([]graph.VertexID, 0)
		for v, l := range sh.labels {
			if l == plan.labels[0] {
				anchors = append(anchors, v)
			}
		}
		sort.Slice(anchors, func(i, j int) bool { return anchors[i] < anchors[j] })
		for _, a := range anchors {
			at := sh.id
			m.mapped[0] = a
			if plan.needsAdj[0] {
				refs, now, err := e.read(at, a)
				if err != nil {
					return count, err
				}
				at = now
				m.refs[0] = refs
			}
			n, err := m.extend(at, 1, limit-count)
			if err != nil {
				return count, err
			}
			count += n
			if limit > 0 && count >= limit {
				return count, nil
			}
		}
	}
	return count, nil
}

// patternPlan is the bind order of a pattern: a BFS from its lowest-ID
// vertex, so every non-root vertex has at least one earlier-bound
// neighbour to enumerate candidates from.
type patternPlan struct {
	order  []graph.VertexID // pattern vertices in bind order
	labels []graph.Label    // labels[i] = label of order[i]
	// parent[i] is the earliest-bound pattern neighbour of order[i]
	// (index into order; -1 for the root): candidates for step i are the
	// fetched adjacency of parent's image.
	parent []int
	// required[i] lists the other earlier-bound neighbours (indices into
	// order): a candidate must appear in each of their fetched adjacency
	// lists.
	required [][]int
	// needsAdj[i] is true when order[i] has a later-bound neighbour, i.e.
	// its image's adjacency must be fetched and carried.
	needsAdj []bool
}

func planPattern(p *graph.Graph) (*patternPlan, error) {
	vs := p.Vertices()
	// BFS from the lowest vertex ID with sorted expansion: deterministic.
	order := make([]graph.VertexID, 0, len(vs))
	seen := map[graph.VertexID]bool{vs[0]: true}
	queue := []graph.VertexID{vs[0]}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, u := range p.Neighbors(v) {
			if !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	if len(order) != len(vs) {
		return nil, fmt.Errorf("store: pattern is disconnected")
	}
	idx := make(map[graph.VertexID]int, len(order))
	for i, v := range order {
		idx[v] = i
	}
	plan := &patternPlan{
		order:    order,
		labels:   make([]graph.Label, len(order)),
		parent:   make([]int, len(order)),
		required: make([][]int, len(order)),
		needsAdj: make([]bool, len(order)),
	}
	for i, v := range order {
		l, _ := p.Label(v)
		plan.labels[i] = l
		plan.parent[i] = -1
		for _, u := range p.Neighbors(v) {
			j := idx[u]
			if j > i {
				plan.needsAdj[i] = true
				continue
			}
			if plan.parent[i] == -1 || j < plan.parent[i] {
				if plan.parent[i] != -1 {
					plan.required[i] = append(plan.required[i], plan.parent[i])
				}
				plan.parent[i] = j
			} else {
				plan.required[i] = append(plan.required[i], j)
			}
		}
		sort.Ints(plan.required[i])
	}
	return plan, nil
}

// patternMatcher is the in-flight traversal state: the partial embedding
// and the adjacency lists fetched for it.
type patternMatcher struct {
	eng    *Engine
	plan   *patternPlan
	mapped []graph.VertexID
	refs   [][]Ref
}

// extend binds pattern step i and recurses; at is the shard where the
// execution currently resides. budget caps the count when positive.
func (m *patternMatcher) extend(at partition.ID, i int, budget int) (int, error) {
	if i == len(m.plan.order) {
		return 1, nil
	}
	cands := append([]Ref(nil), m.refs[m.plan.parent[i]]...)
	sort.Slice(cands, func(a, b int) bool { return cands[a].V < cands[b].V })
	count := 0
	for _, r := range cands {
		if m.bound(i, r.V) {
			continue
		}
		// Sibling candidates are all probed from the parent's position;
		// only the successful binding advances the cursor (the same
		// threading as extendPath, so a path pattern costs exactly what
		// MatchPath charges).
		l, childAt, err := m.eng.Label(at, r.V)
		if err != nil {
			return count, err
		}
		if l != m.plan.labels[i] {
			continue
		}
		ok := true
		for _, q := range m.plan.required[i] {
			if !refsContain(m.refs[q], r.V) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if m.plan.needsAdj[i] {
			refs, now, err := m.eng.read(childAt, r.V)
			if err != nil {
				return count, err
			}
			childAt = now
			m.refs[i] = refs
		} else {
			m.refs[i] = nil
		}
		m.mapped[i] = r.V
		n, err := m.extend(childAt, i+1, budget-count)
		count += n
		if err != nil {
			return count, err
		}
		if budget > 0 && count >= budget {
			return count, nil
		}
	}
	return count, nil
}

// bound reports whether v is already the image of an earlier step
// (injectivity).
func (m *patternMatcher) bound(i int, v graph.VertexID) bool {
	for _, u := range m.mapped[:i] {
		if u == v {
			return true
		}
	}
	return false
}

func refsContain(refs []Ref, v graph.VertexID) bool {
	for _, r := range refs {
		if r.V == v {
			return true
		}
	}
	return false
}
