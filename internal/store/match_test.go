package store

import (
	"math/rand"
	"testing"

	"loom/internal/gen"
	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/query"
)

// refMatchCount counts pattern embeddings by brute force directly on the
// graph: every injective label-preserving mapping whose pattern edges all
// map to graph edges. The store matcher must agree exactly.
func refMatchCount(g *graph.Graph, p *graph.Graph) int {
	pvs := p.Vertices()
	gvs := g.Vertices()
	used := make(map[graph.VertexID]bool)
	mapped := make(map[graph.VertexID]graph.VertexID)
	var rec func(i int) int
	rec = func(i int) int {
		if i == len(pvs) {
			return 1
		}
		pv := pvs[i]
		pl, _ := p.Label(pv)
		count := 0
		for _, gv := range gvs {
			if used[gv] {
				continue
			}
			gl, _ := g.Label(gv)
			if gl != pl {
				continue
			}
			ok := true
			for _, pu := range p.Neighbors(pv) {
				if gu, bound := mapped[pu]; bound && !g.HasEdge(gv, gu) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			used[gv] = true
			mapped[pv] = gv
			count += rec(i + 1)
			delete(mapped, pv)
			used[gv] = false
		}
		return count
	}
	return rec(0)
}

func TestMatchPatternAgreesWithBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	alphabet := gen.DefaultAlphabet(3)
	g, err := gen.ErdosRenyi(60, 150, &gen.UniformLabeler{Alphabet: alphabet, Rand: r}, r)
	if err != nil {
		t.Fatal(err)
	}
	a := partition.MustNewAssignment(3)
	for _, v := range g.Vertices() {
		if err := a.Set(v, partition.ID(int(v)%3)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := Build(g, a)
	if err != nil {
		t.Fatal(err)
	}
	patterns := []*graph.Graph{
		graph.Path("l0", "l1"),
		graph.Path("l0", "l1", "l2"),
		graph.Cycle("l0", "l1", "l2"),
		graph.Star("l1", "l0", "l2"),
		graph.Cycle("l0", "l1", "l0", "l1"),
	}
	for _, p := range patterns {
		want := refMatchCount(g, p)
		got, err := NewEngine(st).MatchPattern(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("pattern %s: MatchPattern = %d, brute force = %d",
				query.FormatPatternSpec(p), got, want)
		}
	}
}

func TestMatchPatternAgreesWithMatchPathOnPaths(t *testing.T) {
	st, _ := fig1Store(t)
	for _, labels := range [][]graph.Label{
		{"a", "b"},
		{"a", "b", "c"},
		{"a", "b", "c", "d"},
	} {
		pe := NewEngine(st)
		wantN, err := pe.MatchPath(labels, 0)
		if err != nil {
			t.Fatal(err)
		}
		ge := NewEngine(st)
		gotN, err := ge.MatchPattern(graph.Path(labels...), 0)
		if err != nil {
			t.Fatal(err)
		}
		if gotN != wantN {
			t.Errorf("path %v: MatchPattern = %d, MatchPath = %d", labels, gotN, wantN)
		}
		// Identical execution plan for a path: identical message counts.
		if gs, ps := ge.Stats(), pe.Stats(); gs.Messages != ps.Messages {
			t.Errorf("path %v: MatchPattern messages = %d, MatchPath = %d", labels, gs.Messages, ps.Messages)
		}
	}
}

func TestMatchPatternLimitAndDeterminism(t *testing.T) {
	st, _ := fig1Store(t)
	p := graph.Cycle("a", "b", "a", "b")
	full, err := NewEngine(st).MatchPattern(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if full == 0 {
		t.Fatal("fig1 must contain the a-b-a-b square")
	}
	capped, err := NewEngine(st).MatchPattern(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if capped != 1 {
		t.Fatalf("limit 1: got %d", capped)
	}
	// Deterministic replay: counts and message totals are bit-identical.
	e1, e2 := NewEngine(st), NewEngine(st)
	n1, _ := e1.MatchPattern(p, 0)
	n2, _ := e2.MatchPattern(p, 0)
	if n1 != n2 || e1.Stats() != e2.Stats() {
		t.Fatalf("non-deterministic: %d/%v vs %d/%v", n1, e1.Stats(), n2, e2.Stats())
	}
}

func TestMatchPatternRejectsDisconnected(t *testing.T) {
	st, _ := fig1Store(t)
	p := graph.New()
	p.AddVertex(0, "a")
	p.AddVertex(1, "b")
	if _, err := NewEngine(st).MatchPattern(p, 0); err == nil {
		t.Fatal("disconnected pattern should be rejected")
	}
}

func TestMatchPatternReplicasReduceMessages(t *testing.T) {
	st, _ := fig1Store(t)
	p := graph.Cycle("a", "b", "a", "b")
	adv := NewAdvisor(st)
	e := NewInstrumentedEngine(st, adv)
	before, err := e.MatchPattern(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats().Messages == 0 {
		t.Skip("no cross-shard traffic for this layout")
	}
	if adv.Apply(4) == 0 {
		t.Fatal("advisor placed nothing despite observed heat")
	}
	e2 := NewEngine(st)
	after, err := e2.MatchPattern(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Fatalf("replicas changed the result: %d vs %d", after, before)
	}
	if e2.Stats().Messages >= e.Stats().Messages {
		t.Fatalf("messages did not drop: %d -> %d", e.Stats().Messages, e2.Stats().Messages)
	}
	if e2.Stats().ReplicaReads == 0 {
		t.Fatal("no replica reads recorded")
	}
}

func TestAdvisorAddSeedsHeat(t *testing.T) {
	st, _ := fig1Store(t)
	adv := NewAdvisor(st)
	adv.Add(3, 0, 5)
	adv.Add(2, 1, 2)
	adv.Add(2, 1, 0) // no-op
	hs := adv.Hotspots()
	if len(hs) != 2 || hs[0].V != 3 || hs[0].Heat != 5 || hs[1].V != 2 || hs[1].Heat != 2 {
		t.Fatalf("hotspots = %+v", hs)
	}
	if placed := adv.Apply(10); placed != 2 {
		t.Fatalf("placed = %d", placed)
	}
}
