package loom_test

// Golden equivalence harness for the dense-core refactor: the map-backed
// reference engine produced these fixtures (testdata/equivalence_golden.json)
// before the interned/slice-backed representations landed, and the dense
// engine must keep reproducing them bit-for-bit — same cut, same partition
// sizes, same per-vertex placements — for fixed seeds.
//
// Regenerate (only when an intentional behaviour change occurs) with:
//
//	go test -run TestGoldenEquivalence -update-golden .

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"loom/internal/core"
	"loom/internal/gen"
	"loom/internal/graph"
	"loom/internal/motif"
	"loom/internal/partition"
	"loom/internal/query"
	"loom/internal/signature"
	"loom/internal/stream"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/equivalence_golden.json from the current engine")

// goldenRecord pins one (workload, partitioner) outcome.
type goldenRecord struct {
	Scenario    string `json:"scenario"`
	Partitioner string `json:"partitioner"`
	Vertices    int    `json:"vertices"`
	Edges       int    `json:"edges"`
	K           int    `json:"k"`
	CutEdges    int    `json:"cut_edges"`
	Sizes       []int  `json:"sizes"`
	// PlacementHash is an FNV-1a hash over (vertex, partition) pairs in
	// ascending vertex order: any single moved vertex changes it.
	PlacementHash uint64 `json:"placement_hash"`
}

// placementHash digests the full assignment.
func placementHash(g *graph.Graph, a *partition.Assignment) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(x int64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, v := range g.Vertices() {
		put(int64(v))
		put(int64(a.Get(v)))
	}
	return h.Sum64()
}

// goldenScenario is one generated workload the equivalence suite runs.
type goldenScenario struct {
	name string
	g    *graph.Graph
	trie *motif.Trie
	k    int
	seed int64
}

// goldenScenarios builds the three generated workloads deterministically.
func goldenScenarios(t testing.TB) []goldenScenario {
	t.Helper()
	alphabet := gen.DefaultAlphabet(4)
	mkTrie := func(seed int64, nq int) *motif.Trie {
		rng := rand.New(rand.NewSource(seed))
		w, err := query.GenerateWorkload(query.DefaultMix(nq), alphabet, rng)
		if err != nil {
			t.Fatal(err)
		}
		trie := motif.New(signature.NewFactoryForAlphabet(alphabet), motif.Options{})
		if err := w.BuildTrie(trie); err != nil {
			t.Fatal(err)
		}
		return trie
	}

	var out []goldenScenario
	{
		rng := rand.New(rand.NewSource(11))
		lab := &gen.UniformLabeler{Alphabet: alphabet, Rand: rng}
		g, err := gen.BarabasiAlbert(800, 2, lab, rng)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, goldenScenario{name: "ba-800", g: g, trie: mkTrie(11, 8), k: 4, seed: 11})
	}
	{
		rng := rand.New(rand.NewSource(23))
		lab := &gen.UniformLabeler{Alphabet: alphabet, Rand: rng}
		g, err := gen.PlantedPartitionDegrees(600, 6, 10, 2, lab, rng)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, goldenScenario{name: "community-600", g: g, trie: mkTrie(23, 6), k: 6, seed: 23})
	}
	{
		rng := rand.New(rand.NewSource(37))
		lab := &gen.UniformLabeler{Alphabet: alphabet, Rand: rng}
		g, err := gen.ErdosRenyi(500, 2000, lab, rng)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, goldenScenario{name: "er-500", g: g, trie: mkTrie(37, 10), k: 5, seed: 37})
	}
	return out
}

// runGoldenScenario produces the records for every partitioner on sc.
func runGoldenScenario(t testing.TB, sc goldenScenario) []goldenRecord {
	t.Helper()
	cfg := partition.Config{K: sc.k, ExpectedVertices: sc.g.NumVertices(), Slack: 1.1, Seed: sc.seed}
	order, err := stream.VertexOrder(sc.g, stream.RandomOrder, rand.New(rand.NewSource(sc.seed+1000)))
	if err != nil {
		t.Fatal(err)
	}

	rec := func(name string, a *partition.Assignment) goldenRecord {
		return goldenRecord{
			Scenario:      sc.name,
			Partitioner:   name,
			Vertices:      sc.g.NumVertices(),
			Edges:         sc.g.NumEdges(),
			K:             sc.k,
			CutEdges:      a.CutEdges(sc.g),
			Sizes:         a.Sizes(),
			PlacementHash: placementHash(sc.g, a),
		}
	}

	var out []goldenRecord

	ldg, err := partition.NewLDG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, rec("ldg", partition.PartitionStream(sc.g, order, ldg)))

	fennel, err := partition.NewFennel(partition.FennelConfig{Config: cfg, ExpectedEdges: sc.g.NumEdges()})
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, rec("fennel", partition.PartitionStream(sc.g, order, fennel)))

	p, err := core.New(core.Config{Partition: cfg, WindowSize: 128, Threshold: 0.05}, sc.trie)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Run(stream.NewSliceSource(stream.FromVertexOrder(sc.g, order)))
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, rec("loom", a))

	// LOOM with traversal weighting exercises the label/PEdge hot path too.
	pw, err := core.New(core.Config{Partition: cfg, WindowSize: 128, Threshold: 0.05, TraversalWeighting: true}, sc.trie)
	if err != nil {
		t.Fatal(err)
	}
	aw, err := pw.Run(stream.NewSliceSource(stream.FromVertexOrder(sc.g, order)))
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, rec("loom-weighted", aw))

	return out
}

// TestGoldenEquivalence checks the engine against the committed map-backed
// reference fixtures (or regenerates them under -update-golden).
func TestGoldenEquivalence(t *testing.T) {
	path := filepath.Join("testdata", "equivalence_golden.json")
	var got []goldenRecord
	for _, sc := range goldenScenarios(t) {
		got = append(got, runGoldenScenario(t, sc)...)
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden records to %s", len(got), path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixtures (run with -update-golden to create): %v", err)
	}
	var want []goldenRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, golden has %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		id := fmt.Sprintf("%s/%s", w.Scenario, w.Partitioner)
		if g.Scenario != w.Scenario || g.Partitioner != w.Partitioner {
			t.Fatalf("record %d is %s/%s, golden has %s", i, g.Scenario, g.Partitioner, id)
		}
		if g.CutEdges != w.CutEdges {
			t.Errorf("%s: cut edges %d, golden %d", id, g.CutEdges, w.CutEdges)
		}
		if fmt.Sprint(g.Sizes) != fmt.Sprint(w.Sizes) {
			t.Errorf("%s: sizes %v, golden %v", id, g.Sizes, w.Sizes)
		}
		if g.PlacementHash != w.PlacementHash {
			t.Errorf("%s: placement hash %#x, golden %#x (assignment drifted)", id, g.PlacementHash, w.PlacementHash)
		}
	}
}
