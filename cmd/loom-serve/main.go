// Command loom-serve runs the online partition server (internal/serve)
// behind an HTTP/JSON API: a long-running process that ingests a graph
// stream, answers placement and routing lookups at memory speed, and
// restreams in the background when the partitioning drifts.
//
// Usage:
//
//	loom-serve -addr :8080 -k 8 [-expected 65536] [-window 256]
//	           [-threshold 0.05] [-workload 16 | -workload-file w.txt]
//	           [-labels 4] [-slack 1.2] [-seed 1]
//	           [-max-cut 0.6] [-max-imbalance 1.3] [-min-assigned 512]
//	           [-drift-window 0] [-max-migration 0]
//	           [-restream-passes 1] [-restream-priority none]
//	           [-restream-heuristic loom] [-mailbox 64]
//	           [-query-limit 200] [-replica-budget 0]
//	           [-max-msgs-per-query 0] [-query-window 0]
//	           [-refresh-queries 0] [-static-workload]
//	           [-data-dir /var/lib/loom] [-fsync always|none]
//	           [-admit-rate 0] [-admit-burst 0] [-reanchor]
//	           [-snapshot-every-batches 0] [-decay-span 0]
//	           [-shutdown-timeout 10s]
//
// With -data-dir the server is durable: accepted batches are written to a
// write-ahead log (fsynced per -fsync), snapshots are taken at restream
// swaps, on POST /checkpoint and at graceful shutdown, and a restart from
// the same directory recovers the snapshot plus the WAL tail — answering
// /place and /stats exactly as before the stop, without replaying the
// whole stream.
//
// API:
//
//	POST /ingest      body: graph text codec ("v <id> <label>" / "e <u> <v>"
//	                  lines, plus "rv <id>" / "re <u> <v>" removals);
//	                  decoded incrementally, applied in order.
//	                  With Content-Type: application/x-loom-frame the body
//	                  is length-prefixed binary frames instead, decoded on
//	                  a parallel worker pool (same ordering and durability
//	                  guarantees; a malformed frame is a 400 and nothing
//	                  from it is applied).
//	GET  /place/{v}   placement of vertex v.
//	GET  /route?v=1&v=2&v=3   shard decision for a query touching vertices.
//	GET  /stats       server statistics (drift estimators, persistence).
//	POST /query       execute a pattern traversal over the current serving
//	                  view. Body: a pattern spec ("path a b c", "cycle ...",
//	                  "star ...", "graph v0:a ... e0-1 ...") as text/plain,
//	                  or {"id","query","limit"} as application/json. The
//	                  response reports matches plus the real cross-shard
//	                  cost (messages, local/remote/replica reads). Served
//	                  patterns feed the observed-workload loop: they become
//	                  the workload the next loom restream scores against,
//	                  and with -max-msgs-per-query the per-window message
//	                  rate alone can trigger a background restream.
//	GET  /workload    query-engine statistics: message rate, view
//	                  generation, replica count, hottest observed patterns.
//	POST /query/refresh  rebuild the serving view from current placements
//	                  (and respend -replica-budget on accumulated heat).
//	POST /restream    force a restream now; ?wait=1 blocks until adopted.
//	POST /drain       assign every window-resident vertex immediately.
//	POST /checkpoint  drain + durable snapshot now (requires -data-dir).
//	GET  /healthz     liveness: state machine + queue depth; 503 once stopped.
//	GET  /readyz      readiness: 503 while wedged, re-anchoring or backlogged.
//
// Failure semantics: with -admit-rate the server sheds load at the door —
// refused ingests get 429 Too Many Requests with a Retry-After header and
// nothing is applied. A persistence failure (e.g. disk full) wedges the
// server: reads keep working, further writes get 503 Service Unavailable,
// and with -reanchor (the default) the server retries the re-anchoring
// snapshot on a capped exponential backoff until durability returns.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"loom/internal/checkpoint"
	"loom/internal/core"
	"loom/internal/gen"
	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/qserve"
	"loom/internal/query"
	"loom/internal/serve"
	"loom/internal/stream"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	k := flag.Int("k", 8, "number of partitions")
	expected := flag.Int("expected", serve.DefaultExpectedVertices, "expected vertex count (capacity planning; soft)")
	window := flag.Int("window", 256, "LOOM window size")
	threshold := flag.Float64("threshold", 0.05, "LOOM motif frequency threshold T")
	slack := flag.Float64("slack", 1.2, "capacity slack factor")
	seed := flag.Int64("seed", 1, "random seed")
	labels := flag.Int("labels", 4, "label alphabet size for the synthetic workload")
	workloadN := flag.Int("workload", 16, "synthetic workload size (0 = plain windowed LDG)")
	workloadFile := flag.String("workload-file", "", "workload file (query text format); overrides -workload")
	maxCut := flag.Float64("max-cut", 0, "restream when cut fraction exceeds this (0 = disabled)")
	maxImb := flag.Float64("max-imbalance", 0, "restream when imbalance exceeds this (0 = disabled)")
	minAssigned := flag.Int("min-assigned", serve.DefaultMinAssigned, "drift triggers wait for this many assigned vertices")
	driftWindow := flag.Int("drift-window", 0, "drift cut rate is measured per this many observed edges (0 = lifetime fraction)")
	maxMigration := flag.Float64("max-migration", 0, "reject automatic restream swaps migrating more than this fraction of vertices (0 = unlimited)")
	passes := flag.Int("restream-passes", 1, "passes per background restream")
	priorityName := flag.String("restream-priority", "none", "between-pass reordering: none|degree|ambivalence|cutdegree")
	heuristic := flag.String("restream-heuristic", "loom", "restream engine: loom|ldg|fennel")
	mailbox := flag.Int("mailbox", serve.DefaultMailbox, "ingest mailbox capacity (batches)")
	queryLimit := flag.Int("query-limit", qserve.DefaultMatchLimit, "match cap per served query (-1 = unlimited; requests can tighten)")
	replicaBudget := flag.Int("replica-budget", 0, "hotspot replicas placed per view refresh (0 = replication off)")
	maxMsgsPerQuery := flag.Float64("max-msgs-per-query", 0, "restream when the per-window cross-shard message rate exceeds this (0 = disabled)")
	queryWindow := flag.Int("query-window", 0, "served queries per message-rate window (0 = default)")
	refreshQueries := flag.Int("refresh-queries", 0, "rebuild the serving view every N served queries (0 = on demand only)")
	staticWorkload := flag.Bool("static-workload", false, "keep the static workload: do not feed served queries back into restream scoring")
	dataDir := flag.String("data-dir", "", "checkpoint directory; enables WAL + snapshot durability")
	fsync := flag.String("fsync", "always", "WAL fsync policy with -data-dir: always|none")
	admitRate := flag.Float64("admit-rate", 0, "admission control: sustained elements/sec accepted into the mailbox (0 = unlimited)")
	admitBurst := flag.Float64("admit-burst", 0, "admission control: burst size in elements (0 = admit-rate)")
	reanchor := flag.Bool("reanchor", true, "self-heal a wedged server: retry the re-anchoring snapshot with capped backoff (needs -data-dir)")
	snapshotEvery := flag.Int("snapshot-every-batches", 0, "periodic checkpoint: snapshot after every N accepted batches, bounding the WAL tail (0 = off; needs -data-dir)")
	decaySpan := flag.Int64("decay-span", 0, "age edges out of restream scoring after this many accepted elements (0 = never)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "graceful drain budget for in-flight HTTP requests on SIGINT/SIGTERM")
	flag.Parse()

	opts := serverOptions{
		k: *k, expected: *expected, window: *window, threshold: *threshold,
		slack: *slack, seed: *seed, labels: *labels,
		workloadN: *workloadN, workloadFile: *workloadFile,
		maxCut: *maxCut, maxImbalance: *maxImb, minAssigned: *minAssigned,
		driftWindow: *driftWindow, maxMigration: *maxMigration,
		passes: *passes, priority: *priorityName, heuristic: *heuristic,
		mailbox: *mailbox, dataDir: *dataDir, fsync: *fsync,
		admitRate: *admitRate, admitBurst: *admitBurst, reanchor: *reanchor,
		snapshotEvery: *snapshotEvery, decaySpan: *decaySpan,
		queryLimit: *queryLimit, replicaBudget: *replicaBudget,
		maxMsgsPerQuery: *maxMsgsPerQuery, queryWindow: *queryWindow,
		refreshQueries: *refreshQueries, staticWorkload: *staticWorkload,
	}
	srv, err := buildServer(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loom-serve: %v\n", err)
		os.Exit(1)
	}
	qe := buildEngine(srv, opts)
	if st := srv.Stats(); st.Persist != nil {
		r := st.Persist.Recover
		fmt.Fprintf(os.Stderr,
			"loom-serve: durable in %s (fsync=%s): snapshot=%v replayed %d records (%d elements) in %dms\n",
			*dataDir, st.Persist.Fsync, r.SnapshotLoaded, r.ReplayedRecords, r.ReplayedElements, r.RecoverMS)
		if r.SkippedSnapshots > 0 {
			// A skipped (damaged) snapshot means recovery fell back to an
			// older generation; any restream swap or drain after that
			// generation is not WAL-representable, so placements may
			// differ from what the previous process last served.
			fmt.Fprintf(os.Stderr,
				"loom-serve: WARNING: %d damaged snapshot(s) skipped; recovered from an older generation — placements may differ from the previous run\n",
				r.SkippedSnapshots)
		}
		if r.TornTail {
			fmt.Fprintf(os.Stderr, "loom-serve: note: torn WAL tail truncated (normal after a crash mid-write)\n")
		}
	}

	// Read/idle timeouts shed half-open and stalled connections so a slow
	// or hostile client cannot pin handler goroutines forever. ReadTimeout
	// is generous because /ingest streams arbitrarily large bodies.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           newMux(srv, qe),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       10 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		// Shutdown waits for in-flight handlers; the serve.Server must
		// stay up until they finish (an ingest mid-stream would otherwise
		// see ErrStopped).
		_ = hs.Shutdown(ctx)
	}()
	fmt.Fprintf(os.Stderr, "loom-serve: listening on %s (k=%d)\n", *addr, *k)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "loom-serve: %v\n", err)
		os.Exit(1)
	}
	<-drained
	srv.Stop()
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "loom-serve: stopped; ingested=%d assigned=%d cut=%.3f restreams=%d\n",
		st.Ingested, st.Assigned, st.CutFraction, st.Restreams)
}

type serverOptions struct {
	k, expected, window  int
	threshold, slack     float64
	seed                 int64
	labels, workloadN    int
	workloadFile         string
	maxCut, maxImbalance float64
	minAssigned, passes  int
	driftWindow          int
	maxMigration         float64
	priority, heuristic  string
	mailbox              int
	dataDir, fsync       string
	admitRate            float64
	admitBurst           float64
	reanchor             bool
	snapshotEvery        int
	decaySpan            int64
	queryLimit           int
	replicaBudget        int
	maxMsgsPerQuery      float64
	queryWindow          int
	refreshQueries       int
	staticWorkload       bool
}

// buildServer assembles a serve.Server from CLI options; shared by main
// and the end-to-end test.
func buildServer(o serverOptions) (*serve.Server, error) {
	priority, err := partition.ParsePriority(o.priority)
	if err != nil {
		return nil, err
	}
	alphabet := gen.DefaultAlphabet(o.labels)
	w, err := query.ResolveWorkload(o.workloadFile, o.workloadN, alphabet, o.seed)
	if err != nil {
		return nil, err
	}
	cfg := serve.Config{
		Core: core.Config{
			Partition:  partition.Config{K: o.k, ExpectedVertices: o.expected, Slack: o.slack, Seed: o.seed},
			WindowSize: o.window,
			Threshold:  o.threshold,
		},
		Workload: w,
		Alphabet: alphabet,
		Mailbox:  o.mailbox,
		Drift: serve.DriftConfig{
			MaxCutFraction:       o.maxCut,
			MaxImbalance:         o.maxImbalance,
			MinAssigned:          o.minAssigned,
			WindowEdges:          o.driftWindow,
			MaxMigrationFraction: o.maxMigration,
			MaxMessagesPerQuery:  o.maxMsgsPerQuery,
			QueryWindow:          o.queryWindow,
			Passes:               o.passes,
			Priority:             priority,
			Heuristic:            o.heuristic,
		},
		Admission:            serve.AdmissionConfig{Rate: o.admitRate, Burst: o.admitBurst},
		Reanchor:             serve.ReanchorPolicy{Enabled: o.reanchor && o.dataDir != ""},
		SnapshotEveryBatches: o.snapshotEvery,
		DecaySpan:            o.decaySpan,
	}
	// Validate the fsync policy even without -data-dir, so a typo does not
	// lie dormant until durability is turned on.
	policy, err := checkpoint.ParseSyncPolicy(o.fsync)
	if err != nil {
		return nil, err
	}
	if o.dataDir == "" {
		return serve.New(cfg)
	}
	return serve.Open(cfg, serve.PersistOptions{Dir: o.dataDir, Fsync: policy})
}

// buildEngine assembles the query engine over srv from CLI options;
// shared by main and the end-to-end test. Trigger thresholds
// (max-msgs-per-query, query-window) travel via the server's DriftConfig,
// so the engine inherits them.
func buildEngine(srv *serve.Server, o serverOptions) *qserve.Engine {
	return qserve.New(srv, qserve.Options{
		MatchLimit:     o.queryLimit,
		ReplicaBudget:  o.replicaBudget,
		RefreshQueries: o.refreshQueries,
		StaticWorkload: o.staticWorkload,
	})
}

// ingestBatch bounds how many decoded elements are applied per IngestSync
// round, so decode and partitioning pipeline against each other.
const ingestBatch = 512

type ingestResponse struct {
	Accepted int      `json:"accepted"`
	Rejected int      `json:"rejected"`
	Errors   []string `json:"errors,omitempty"`
	// Frames and Deduped are reported for binary-framed ingest only:
	// frames applied, and intra-frame duplicates dropped by the decode
	// stage before the writer saw them.
	Frames  int `json:"frames,omitempty"`
	Deduped int `json:"deduped,omitempty"`
	// Error is the decode error that terminated the body mid-stream, if
	// any; Accepted/Rejected still report the batches applied before it
	// (there is no rollback).
	Error string `json:"error,omitempty"`
}

// contentTypeIs reports whether header names the media type want,
// ignoring parameters (charset etc.) and surrounding whitespace.
func contentTypeIs(header, want string) bool {
	if i := strings.IndexByte(header, ';'); i >= 0 {
		header = header[:i]
	}
	return strings.EqualFold(strings.TrimSpace(header), want)
}

// ingestText applies a body in the line-oriented text codec through
// IngestSync, batching decode against partitioning.
func ingestText(srv *serve.Server, w http.ResponseWriter, r *http.Request) {
	src := stream.FromReader(r.Body)
	before := srv.Stats()
	resp := ingestResponse{}
	batch := make([]stream.Element, 0, ingestBatch)
	// A typed refusal (wedged persistence, admission overload, stopped)
	// terminates the request: retrying the rest of the body would only
	// widen the hole the client has to re-send.
	var refused error
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		err := srv.IngestSync(batch)
		batch = batch[:0]
		switch {
		case err == nil:
		case errors.Is(err, serve.ErrWedged), errors.Is(err, serve.ErrOverloaded), errors.Is(err, serve.ErrStopped):
			refused = err
			return false
		default: // element rejections: recorded, not fatal
			if len(resp.Errors) < 16 {
				resp.Errors = append(resp.Errors, err.Error())
			}
		}
		return true
	}
	for refused == nil {
		el, ok := src.Next()
		if !ok {
			break
		}
		batch = append(batch, el)
		if len(batch) == ingestBatch {
			flush()
		}
	}
	flush()
	// Counted from the server's own ledger (approximate only under
	// concurrent ingest requests).
	after := srv.Stats()
	resp.Accepted = int(after.Ingested - before.Ingested)
	resp.Rejected = int(after.Rejected - before.Rejected)
	if refused != nil {
		resp.Error = refused.Error()
		status, _ := refusalStatus(w, refused)
		writeJSON(w, status, resp)
		return
	}
	if err := src.Err(); err != nil {
		resp.Error = err.Error()
		writeJSON(w, http.StatusBadRequest, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// ingestBinary applies a body of length-prefixed binary frames through
// the parallel decode front-stage. A malformed frame terminates the
// request with 400; frames before it were applied in order (there is no
// rollback), exactly like a mid-stream text decode error.
func ingestBinary(srv *serve.Server, w http.ResponseWriter, r *http.Request) {
	before := srv.Stats()
	res, err := srv.IngestFrames(r.Body)
	resp := ingestResponse{Frames: res.Frames, Deduped: res.Deduped}
	after := srv.Stats()
	resp.Accepted = int(after.Ingested - before.Ingested)
	resp.Rejected = int(after.Rejected - before.Rejected)
	if elemErr := res.Err(); elemErr != nil && len(resp.Errors) < 16 {
		resp.Errors = append(resp.Errors, elemErr.Error())
	}
	if err != nil {
		resp.Error = err.Error()
		var bad *serve.BadFrameError
		switch {
		case errors.As(err, &bad):
			writeJSON(w, http.StatusBadRequest, resp)
		default:
			status, ok := refusalStatus(w, err)
			if !ok {
				status = http.StatusInternalServerError
			}
			writeJSON(w, status, resp)
		}
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// maxQueryBody bounds a /query request body; pattern specs are tiny, so
// anything bigger is a client error, not a query.
const maxQueryBody = 1 << 20

// newMux wires the HTTP surface over srv and the query engine qe.
func newMux(srv *serve.Server, qe *qserve.Engine) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /ingest", func(w http.ResponseWriter, r *http.Request) {
		if ct := r.Header.Get("Content-Type"); contentTypeIs(ct, stream.BinaryContentType) {
			ingestBinary(srv, w, r)
			return
		}
		ingestText(srv, w, r)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h := srv.Health()
		status := http.StatusOK
		if h.State == "stopped" {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, h)
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		h := srv.Health()
		status := http.StatusOK
		if !h.Ready {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, h)
	})

	mux.HandleFunc("GET /place/{v}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseInt(r.PathValue("v"), 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad vertex id"})
			return
		}
		p, ok := srv.Where(graph.VertexID(id))
		writeJSON(w, http.StatusOK, map[string]any{
			"vertex":    id,
			"assigned":  ok,
			"partition": int(p),
		})
	})

	mux.HandleFunc("GET /route", func(w http.ResponseWriter, r *http.Request) {
		var vs []graph.VertexID
		for _, raw := range r.URL.Query()["v"] {
			id, err := strconv.ParseInt(raw, 10, 64)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad vertex id %q", raw)})
				return
			}
			vs = append(vs, graph.VertexID(id))
		}
		if len(vs) == 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "need at least one v= parameter"})
			return
		}
		writeJSON(w, http.StatusOK, srv.Route(vs...))
	})

	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, srv.Stats())
	})

	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBody+1))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		if len(body) > maxQueryBody {
			writeJSON(w, http.StatusRequestEntityTooLarge, map[string]string{"error": "query body too large"})
			return
		}
		req, err := qserve.ParseRequest(r.Header.Get("Content-Type"), body)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		resp, err := qe.Query(req)
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, qserve.ErrBadQuery) {
				status = http.StatusBadRequest
			} else if s, ok := refusalStatus(w, err); ok {
				status = s
			}
			writeJSON(w, status, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("GET /workload", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, qe.Stats())
	})

	mux.HandleFunc("POST /query/refresh", func(w http.ResponseWriter, r *http.Request) {
		if err := qe.Refresh(); err != nil {
			status, ok := refusalStatus(w, err)
			if !ok {
				status = http.StatusInternalServerError
			}
			writeJSON(w, status, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, qe.Stats())
	})

	mux.HandleFunc("POST /restream", func(w http.ResponseWriter, r *http.Request) {
		wait := r.URL.Query().Get("wait") != ""
		if !wait {
			go func() { _ = srv.Restream() }()
			writeJSON(w, http.StatusAccepted, map[string]string{"status": "restream requested"})
			return
		}
		if err := srv.Restream(); err != nil {
			writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, srv.Stats().LastRestream)
	})

	mux.HandleFunc("POST /drain", func(w http.ResponseWriter, r *http.Request) {
		if err := srv.Drain(); err != nil {
			status, ok := refusalStatus(w, err)
			if !ok {
				status = http.StatusInternalServerError
			}
			writeJSON(w, status, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"assigned": srv.Stats().Assigned})
	})

	mux.HandleFunc("POST /checkpoint", func(w http.ResponseWriter, r *http.Request) {
		if err := srv.Checkpoint(); err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, serve.ErrNoPersistence) {
				status = http.StatusConflict
			}
			writeJSON(w, status, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, srv.Stats().Persist)
	})

	return mux
}

// refusalStatus maps serve's typed refusals to HTTP semantics: an
// admission refusal is 429 Too Many Requests with a Retry-After header,
// a wedged or stopped server is 503 Service Unavailable. ok is false for
// errors that are not typed refusals.
func refusalStatus(w http.ResponseWriter, err error) (status int, ok bool) {
	var ov *serve.OverloadError
	switch {
	case errors.As(err, &ov):
		secs := int64((ov.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(max(secs, 1), 10))
		return http.StatusTooManyRequests, true
	case errors.Is(err, serve.ErrOverloaded):
		return http.StatusTooManyRequests, true
	case errors.Is(err, serve.ErrWedged), errors.Is(err, serve.ErrStopped):
		return http.StatusServiceUnavailable, true
	}
	return 0, false
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
