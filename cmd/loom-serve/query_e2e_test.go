package main

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"loom/internal/gen"
	"loom/internal/graph"
	"loom/internal/qserve"
	"loom/internal/query"
	"loom/internal/store"
)

// genGraph builds the deterministic labelled planted-partition graph the
// query end-to-end tests serve.
func genGraph(t *testing.T, n, k int, seed int64) (*graph.Graph, []graph.Label) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	alphabet := gen.DefaultAlphabet(4)
	g, err := gen.PlantedPartitionDegrees(n, k, 8, 2, &gen.UniformLabeler{Alphabet: alphabet, Rand: r}, r)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return g, alphabet
}

// ingestAndDrain pushes g over the wire in stream layout and drains.
func ingestAndDrain(t *testing.T, hs string, g *graph.Graph) {
	t.Helper()
	var sb strings.Builder
	if err := graph.WriteStreamed(&sb, g); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var ing ingestResponse
	if code := postBody(t, hs+"/ingest", sb.String(), &ing); code != http.StatusOK {
		t.Fatalf("/ingest status %d: %+v", code, ing)
	}
	if ing.Rejected != 0 {
		t.Fatalf("/ingest rejected %d elements: %v", ing.Rejected, ing.Errors)
	}
	if code := postBody(t, hs+"/drain", "", nil); code != http.StatusOK {
		t.Fatalf("/drain status %d", code)
	}
}

// postQuery runs one query over the wire with the given content type.
func postQuery(t *testing.T, hs, contentType, body string) (qserve.Response, int) {
	t.Helper()
	resp, err := http.Post(hs+"/query", contentType, strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	defer resp.Body.Close()
	var out qserve.Response
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("POST /query: decode: %v", err)
		}
	}
	return out, resp.StatusCode
}

// TestQueryHTTPParityWithOfflineStore is the serving-parity contract over
// the wire: POST /query answers bit-identically — matches and the full
// message accounting — to the offline evaluator (store.Build over the
// exported assignment, the engine behind `loom evaluate -store`).
func TestQueryHTTPParityWithOfflineStore(t *testing.T) {
	g, alphabet := genGraph(t, 300, 3, 41)
	srv, hs := startTestServer(t, serverOptions{
		k: 3, expected: 300, window: 64, threshold: 0.05, slack: 1.2, seed: 1,
		labels: 4, workloadN: 8, mailbox: 8,
		passes: 1, priority: "none", heuristic: "loom", minAssigned: 4,
		queryLimit: -1,
	})
	ingestAndDrain(t, hs.URL, g)

	a, err := srv.Export()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	st, err := store.Build(g, a)
	if err != nil {
		t.Fatalf("build: %v", err)
	}

	l := func(i int) string { return string(alphabet[i]) }
	specs := []string{
		"path " + l(0) + " " + l(1),
		"path " + l(0) + " " + l(1) + " " + l(2),
		"cycle " + l(0) + " " + l(1) + " " + l(2),
		"star " + l(2) + " " + l(0) + " " + l(1),
	}
	for _, spec := range specs {
		served, code := postQuery(t, hs.URL, "text/plain", spec)
		if code != http.StatusOK {
			t.Fatalf("%q: status %d", spec, code)
		}
		p, err := query.ParsePatternSpec(spec)
		if err != nil {
			t.Fatalf("parse %q: %v", spec, err)
		}
		off := store.NewEngine(st)
		var want int
		if labels, ok := query.PathLabels(p); ok {
			want, err = off.MatchPath(labels, 0)
		} else {
			want, err = off.MatchPattern(p, 0)
		}
		if err != nil {
			t.Fatalf("%q offline: %v", spec, err)
		}
		if served.Matches != want {
			t.Errorf("%q: served %d matches, offline %d", spec, served.Matches, want)
		}
		os := off.Stats()
		if served.Messages != os.Messages || served.LocalReads != os.LocalReads ||
			served.RemoteReads != os.RemoteReads || served.ReplicaReads != os.ReplicaReads {
			t.Errorf("%q: served cost %+v, offline %+v", spec, served, os)
		}

		// The JSON form of the same query serves identically (modulo the
		// echoed id).
		asJSON := string(qserve.EncodeRequest(qserve.Request{ID: "q", Spec: spec}))
		j, code := postQuery(t, hs.URL, "application/json", asJSON)
		if code != http.StatusOK {
			t.Fatalf("%q json: status %d", spec, code)
		}
		if j.ID != "q" {
			t.Errorf("%q json: id %q not echoed", spec, j.ID)
		}
		j.ID = served.ID
		if j != served {
			t.Errorf("%q: json serve %+v != text serve %+v", spec, j, served)
		}
	}

	// Malformed requests are 400s, not 500s.
	if _, code := postQuery(t, hs.URL, "text/plain", "frob x y"); code != http.StatusBadRequest {
		t.Fatalf("bad spec: status %d, want 400", code)
	}
	if _, code := postQuery(t, hs.URL, "application/json", `{"query":`); code != http.StatusBadRequest {
		t.Fatalf("bad json: status %d, want 400", code)
	}

	// The engine-stats and refresh endpoints answer.
	var es qserve.EngineStats
	if code := getJSON(t, hs.URL+"/workload", &es); code != http.StatusOK {
		t.Fatalf("/workload status %d", code)
	}
	if es.Queries == 0 || es.ObservedPatterns == 0 || es.ViewGeneration == 0 {
		t.Fatalf("/workload stats %+v", es)
	}
	if code := postBody(t, hs.URL+"/query/refresh", "", &es); code != http.StatusOK {
		t.Fatalf("/query/refresh status %d", code)
	}
	if es.ViewGeneration < 2 {
		t.Fatalf("refresh did not advance the view: %+v", es)
	}
}

// TestShiftedWorkloadRestreamReducesMessages closes the loop end to end:
// two identical servers ingest the same graph; one feeds served queries
// back (observed workload + message-rate trigger), the control never
// restreams. A shifted query load — patterns the static setup knows
// nothing about — must trigger an observed-workload restream on the live
// server and leave it answering that load with fewer cross-shard messages
// than the control.
func TestShiftedWorkloadRestreamReducesMessages(t *testing.T) {
	g, alphabet := genGraph(t, 400, 2, 59)
	base := serverOptions{
		k: 2, expected: 400, window: 64, threshold: 0.05, slack: 1.2, seed: 1,
		labels: 4, workloadN: 0, mailbox: 8,
		passes: 2, priority: "none", heuristic: "loom", minAssigned: 4,
		queryLimit: -1,
	}
	live := base
	live.maxMsgsPerQuery = 0.001 // any cross-shard traffic trips it
	live.queryWindow = 8
	liveSrv, liveHS := startTestServer(t, live)
	_, ctlHS := startTestServer(t, base) // never-refed control

	ingestAndDrain(t, liveHS.URL, g)
	ingestAndDrain(t, ctlHS.URL, g)

	l := func(i int) string { return string(alphabet[i]) }
	hot := []string{
		"path " + l(0) + " " + l(1),
		"path " + l(1) + " " + l(0) + " " + l(1),
	}

	// Shifted load: serve the hot patterns (queries only, no ingest) until
	// the live server's message-rate window fires a workload restream.
	deadline := time.Now().Add(30 * time.Second)
	for liveSrv.Stats().Restreams == 0 {
		for _, spec := range hot {
			if resp, code := postQuery(t, liveHS.URL, "text/plain", spec); code != http.StatusOK {
				t.Fatalf("%q: status %d", spec, code)
			} else if resp.Messages == 0 {
				t.Skip("no cross-shard traffic for this layout")
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("workload restream never fired")
		}
		time.Sleep(time.Millisecond)
	}
	rep := liveSrv.Stats().LastRestream
	if rep == nil || rep.Trigger != "workload" {
		t.Fatalf("report = %+v, want workload trigger", rep)
	}
	if rep.WorkloadSource != "observed" {
		t.Fatalf("report = %+v, want observed workload source", rep)
	}

	// Wait for the engine's post-restream view refresh, then probe both
	// servers with the same shifted load.
	var es qserve.EngineStats
	for {
		if code := getJSON(t, liveHS.URL+"/workload", &es); code != http.StatusOK {
			t.Fatalf("/workload status %d", code)
		}
		if es.ViewGeneration >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("view never refreshed after restream: %+v", es)
		}
		time.Sleep(time.Millisecond)
	}
	probe := func(hs string) (msgs, matches int) {
		t.Helper()
		for _, spec := range hot {
			resp, code := postQuery(t, hs, "text/plain", spec)
			if code != http.StatusOK {
				t.Fatalf("probe %q: status %d", spec, code)
			}
			msgs += resp.Messages
			matches += resp.Matches
		}
		return msgs, matches
	}
	liveMsgs, liveMatches := probe(liveHS.URL)
	ctlMsgs, ctlMatches := probe(ctlHS.URL)
	if liveMatches != ctlMatches {
		t.Fatalf("restream changed results: live %d matches, control %d", liveMatches, ctlMatches)
	}
	if liveMsgs >= ctlMsgs {
		t.Fatalf("observed-workload restream did not reduce cross-shard messages: live %d, control %d", liveMsgs, ctlMsgs)
	}
	t.Logf("shifted load: %d msgs on control, %d after observed-workload restream", ctlMsgs, liveMsgs)
}
