package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"loom/internal/fault"
	"loom/internal/gen"
	"loom/internal/graph"
	"loom/internal/serve"
	"loom/internal/stream"
)

func startTestServer(t *testing.T, o serverOptions) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv, err := buildServer(o)
	if err != nil {
		t.Fatalf("buildServer: %v", err)
	}
	hs := httptest.NewServer(newMux(srv, buildEngine(srv, o)))
	t.Cleanup(func() {
		hs.Close()
		srv.Stop()
	})
	return srv, hs
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return resp.StatusCode
}

func postBody(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("POST %s: decode: %v", url, err)
	}
	return resp.StatusCode
}

// postBinary posts a binary frame body with the binary content type
// (plus a parameter, so the media-type matching is exercised too).
func postBinary(t *testing.T, url string, body []byte, out any) int {
	t.Helper()
	resp, err := http.Post(url, stream.BinaryContentType+"; charset=utf-8", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("POST %s: decode: %v", url, err)
	}
	return resp.StatusCode
}

// framesOf encodes elems into binary frames of at most per elements.
func framesOf(t *testing.T, elems []stream.Element, per int) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw := stream.NewFrameWriter(&buf)
	for i := 0; i < len(elems); i += per {
		end := min(i+per, len(elems))
		if err := fw.WriteBatch(elems[i:end]); err != nil {
			t.Fatalf("encode frame at %d: %v", i, err)
		}
	}
	return buf.Bytes()
}

// TestServeEndToEnd is the HTTP smoke test: start the server, ingest the
// paper's Figure 1 graph over the wire in stream layout, query every
// placement, and assert a consistent k-way assignment.
func TestServeEndToEnd(t *testing.T) {
	const k = 2
	_, hs := startTestServer(t, serverOptions{
		k: k, expected: 16, window: 4, threshold: 0.3, slack: 1.2, seed: 1,
		labels: 4, workloadN: 0, mailbox: 8,
		passes: 1, priority: "none", heuristic: "ldg", minAssigned: 4,
	})

	g := graph.Fig1Graph()
	var sb strings.Builder
	if err := graph.WriteStreamed(&sb, g); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var ing ingestResponse
	if code := postBody(t, hs.URL+"/ingest", sb.String(), &ing); code != http.StatusOK {
		t.Fatalf("/ingest status %d", code)
	}
	wantElems := g.NumVertices() + g.NumEdges()
	if ing.Accepted != wantElems || ing.Rejected != 0 {
		t.Fatalf("/ingest accepted=%d rejected=%d, want %d/0 (%v)", ing.Accepted, ing.Rejected, wantElems, ing.Errors)
	}

	// Drain so the small graph's window residents get placements too.
	var drain struct {
		Assigned int `json:"assigned"`
	}
	if code := postBody(t, hs.URL+"/drain", "", &drain); code != http.StatusOK {
		t.Fatalf("/drain status %d", code)
	}
	if drain.Assigned != g.NumVertices() {
		t.Fatalf("/drain assigned=%d, want %d", drain.Assigned, g.NumVertices())
	}

	// Every vertex is placed in [0, k).
	counts := make([]int, k)
	for _, v := range g.Vertices() {
		var place struct {
			Vertex    int64 `json:"vertex"`
			Assigned  bool  `json:"assigned"`
			Partition int   `json:"partition"`
		}
		if code := getJSON(t, fmt.Sprintf("%s/place/%d", hs.URL, v), &place); code != http.StatusOK {
			t.Fatalf("/place/%d status %d", v, code)
		}
		if !place.Assigned {
			t.Fatalf("vertex %d unassigned after drain", v)
		}
		if place.Partition < 0 || place.Partition >= k {
			t.Fatalf("vertex %d in partition %d, want [0,%d)", v, place.Partition, k)
		}
		counts[place.Partition]++
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != g.NumVertices() {
		t.Fatalf("placed %d vertices, want %d", total, g.NumVertices())
	}

	// Stats agree with the per-vertex view.
	var st serve.Stats
	if code := getJSON(t, hs.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("/stats status %d", code)
	}
	if st.K != k || st.Assigned != g.NumVertices() || st.Vertices != g.NumVertices() || st.Edges != g.NumEdges() {
		t.Fatalf("stats mismatch: %+v", st)
	}
	for i, c := range counts {
		if st.Sizes[i] != c {
			t.Fatalf("sizes[%d]=%d, want %d", i, st.Sizes[i], c)
		}
	}

	// Routing picks a real shard for known anchors.
	var route serve.RouteDecision
	if code := getJSON(t, hs.URL+"/route?v=1&v=2&v=3", &route); code != http.StatusOK {
		t.Fatalf("/route status %d", code)
	}
	if route.Known != 3 || route.Target < 0 || int(route.Target) >= k {
		t.Fatalf("route = %+v", route)
	}

	// A forced restream adopts and reports.
	var rep serve.RestreamReport
	if code := postBody(t, hs.URL+"/restream?wait=1", "", &rep); code != http.StatusOK {
		t.Fatalf("/restream status %d", code)
	}
	if rep.Trigger != "manual" || rep.Err != "" {
		t.Fatalf("restream report = %+v", rep)
	}
	if code := getJSON(t, hs.URL+"/stats", &st); code != http.StatusOK || st.Restreams != 1 {
		t.Fatalf("restreams=%d after manual restream", st.Restreams)
	}
}

// TestServeCrashRecoveryE2E is the crash drill over the wire: a durable
// loom-serve ingests half a stream over HTTP, is hard-stopped mid-stream
// with no graceful checkpoint, restarted from its -data-dir, fed the
// rest, and must answer every /place and every /stats counter exactly
// like a control server that never went down. Recovery replays only the
// WAL tail — asserted against the persistence stats.
func TestServeCrashRecoveryE2E(t *testing.T) {
	const k = 4
	rng := rand.New(rand.NewSource(21))
	alphabet := gen.DefaultAlphabet(4)
	g, err := gen.PlantedPartitionDegrees(600, k, 8, 2, &gen.UniformLabeler{Alphabet: alphabet, Rand: rng}, rng)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	var sb strings.Builder
	if err := graph.WriteStreamed(&sb, g); err != nil {
		t.Fatalf("encode: %v", err)
	}
	// Split the stream body at a line boundary: any prefix of the
	// streamed layout is itself a valid stream.
	body := sb.String()
	mid := strings.LastIndex(body[:len(body)/2], "\n") + 1
	first, second := body[:mid], body[mid:]

	opts := serverOptions{
		k: k, expected: g.NumVertices(), window: 32, threshold: 0.05,
		slack: 1.2, seed: 1, labels: 4, workloadN: 8, mailbox: 8,
		passes: 1, priority: "none", heuristic: "loom", minAssigned: 1 << 30,
	}
	_, controlHS := startTestServer(t, opts)
	dopts := opts
	dopts.dataDir = t.TempDir()
	dopts.fsync = "always"
	durable, durableHS := startTestServer(t, dopts)

	var ingCtl, ingDur ingestResponse
	if code := postBody(t, controlHS.URL+"/ingest", first, &ingCtl); code != http.StatusOK {
		t.Fatalf("control ingest status %d", code)
	}
	if code := postBody(t, durableHS.URL+"/ingest", first, &ingDur); code != http.StatusOK {
		t.Fatalf("durable ingest status %d", code)
	}
	if ingCtl.Accepted != ingDur.Accepted || ingDur.Rejected != 0 {
		t.Fatalf("accept mismatch before crash: control %+v durable %+v", ingCtl, ingDur)
	}

	// Crash: hard stop, no checkpoint. The httptest server is closed by
	// t.Cleanup later; the data directory now holds only WAL records.
	durable.Abort()
	durableHS.Close()

	restarted, restartedHS := startTestServer(t, dopts)
	rst := restarted.Stats()
	if rst.Persist == nil {
		t.Fatal("restarted server has no persistence stats")
	}
	if rst.Persist.Recover.SnapshotLoaded {
		t.Fatalf("no snapshot existed, yet recovery loaded one: %+v", rst.Persist.Recover)
	}
	if rst.Persist.Recover.ReplayedElements != ingDur.Accepted {
		t.Fatalf("replayed %d elements, want the %d accepted before the crash",
			rst.Persist.Recover.ReplayedElements, ingDur.Accepted)
	}

	// Feed the rest to both, drain both, then compare everything.
	if code := postBody(t, controlHS.URL+"/ingest", second, &ingCtl); code != http.StatusOK {
		t.Fatalf("control ingest status %d", code)
	}
	if code := postBody(t, restartedHS.URL+"/ingest", second, &ingDur); code != http.StatusOK {
		t.Fatalf("restarted ingest status %d", code)
	}
	if code := postBody(t, controlHS.URL+"/drain", "", nil); code != http.StatusOK {
		t.Fatalf("control drain status %d", code)
	}
	if code := postBody(t, restartedHS.URL+"/drain", "", nil); code != http.StatusOK {
		t.Fatalf("restarted drain status %d", code)
	}

	var stCtl, stDur serve.Stats
	if code := getJSON(t, controlHS.URL+"/stats", &stCtl); code != http.StatusOK {
		t.Fatal("control /stats failed")
	}
	if code := getJSON(t, restartedHS.URL+"/stats", &stDur); code != http.StatusOK {
		t.Fatal("restarted /stats failed")
	}
	stCtl.MailboxDepth, stDur.MailboxDepth = 0, 0
	stCtl.Persist, stDur.Persist = nil, nil
	ctlJSON, _ := json.Marshal(stCtl)
	durJSON, _ := json.Marshal(stDur)
	if string(ctlJSON) != string(durJSON) {
		t.Fatalf("stats diverge after crash recovery:\ncontrol   %s\nrestarted %s", ctlJSON, durJSON)
	}
	if stDur.Assigned != g.NumVertices() || stDur.CutEdges == 0 {
		t.Fatalf("implausible recovered stats: %+v", stDur)
	}

	for _, v := range g.Vertices() {
		var pc, pd struct {
			Assigned  bool `json:"assigned"`
			Partition int  `json:"partition"`
		}
		if code := getJSON(t, fmt.Sprintf("%s/place/%d", controlHS.URL, v), &pc); code != http.StatusOK {
			t.Fatalf("control /place/%d status %d", v, code)
		}
		if code := getJSON(t, fmt.Sprintf("%s/place/%d", restartedHS.URL, v), &pd); code != http.StatusOK {
			t.Fatalf("restarted /place/%d status %d", v, code)
		}
		if pc != pd {
			t.Fatalf("placement of %d diverges: control %+v restarted %+v", v, pc, pd)
		}
	}
}

// TestServeCheckpointEndpoint covers POST /checkpoint: conflict without
// -data-dir, a durable snapshot with it, and a warm restart that replays
// nothing.
func TestServeCheckpointEndpoint(t *testing.T) {
	_, plainHS := startTestServer(t, serverOptions{
		k: 2, expected: 16, window: 4, slack: 1.2, labels: 2, workloadN: 0,
		mailbox: 4, passes: 1, priority: "none", heuristic: "ldg", minAssigned: 4,
	})
	if code := postBody(t, plainHS.URL+"/checkpoint", "", nil); code != http.StatusConflict {
		t.Fatalf("/checkpoint without -data-dir status %d, want 409", code)
	}

	dopts := serverOptions{
		k: 2, expected: 16, window: 4, slack: 1.2, seed: 1, labels: 4, workloadN: 0,
		mailbox: 4, passes: 1, priority: "none", heuristic: "ldg", minAssigned: 4,
		dataDir: t.TempDir(), fsync: "always",
	}
	durable, durableHS := startTestServer(t, dopts)
	g := graph.Fig1Graph()
	var sb strings.Builder
	if err := graph.WriteStreamed(&sb, g); err != nil {
		t.Fatal(err)
	}
	if code := postBody(t, durableHS.URL+"/ingest", sb.String(), nil); code != http.StatusOK {
		t.Fatal("ingest failed")
	}
	var ps serve.PersistStats
	if code := postBody(t, durableHS.URL+"/checkpoint", "", &ps); code != http.StatusOK {
		t.Fatalf("/checkpoint status %d", code)
	}
	if !ps.Enabled || ps.Snapshots != 1 {
		t.Fatalf("persist stats after checkpoint: %+v", ps)
	}
	// A checkpoint is a drain barrier: everything is assigned.
	want := make(map[graph.VertexID]int)
	for _, v := range g.Vertices() {
		var place struct {
			Assigned  bool `json:"assigned"`
			Partition int  `json:"partition"`
		}
		if code := getJSON(t, fmt.Sprintf("%s/place/%d", durableHS.URL, v), &place); code != http.StatusOK || !place.Assigned {
			t.Fatalf("vertex %d unassigned after checkpoint", v)
		}
		want[v] = place.Partition
	}
	durable.Abort()
	durableHS.Close()

	restarted, restartedHS := startTestServer(t, dopts)
	ri := restarted.Stats().Persist.Recover
	if !ri.SnapshotLoaded || ri.ReplayedRecords != 0 {
		t.Fatalf("restart after checkpoint: %+v, want snapshot + empty tail", ri)
	}
	for v, p := range want {
		var place struct {
			Assigned  bool `json:"assigned"`
			Partition int  `json:"partition"`
		}
		getJSON(t, fmt.Sprintf("%s/place/%d", restartedHS.URL, v), &place)
		if !place.Assigned || place.Partition != p {
			t.Fatalf("vertex %d recovered as %+v, want partition %d", v, place, p)
		}
	}
}

func TestServeIngestErrors(t *testing.T) {
	_, hs := startTestServer(t, serverOptions{
		k: 2, expected: 16, window: 4, slack: 1.2, labels: 2, workloadN: 0,
		mailbox: 4, passes: 1, priority: "none", heuristic: "loom", minAssigned: 4,
	})

	// Malformed codec input is a 400.
	if code := postBody(t, hs.URL+"/ingest", "v 0 a\nnot-a-record\n", nil); code != http.StatusBadRequest {
		t.Fatalf("malformed ingest status %d, want 400", code)
	}
	// Element-level rejections (duplicate vertex) are reported, not fatal.
	var ing ingestResponse
	if code := postBody(t, hs.URL+"/ingest", "v 0 a\nv 1 b\ne 0 1\n", &ing); code != http.StatusOK {
		t.Fatalf("ingest status %d", code)
	}
	if code := postBody(t, hs.URL+"/ingest", "v 1 b\nv 2 a\n", &ing); code != http.StatusOK {
		t.Fatalf("ingest status %d", code)
	}
	if ing.Rejected != 1 || ing.Accepted != 1 || len(ing.Errors) == 0 {
		t.Fatalf("ingest response = %+v, want 1 rejected / 1 accepted", ing)
	}

	if code := postBody(t, hs.URL+"/drain", "", nil); code != http.StatusOK {
		t.Fatalf("drain status %d", code)
	}
	resp, err := http.Get(hs.URL + "/place/xyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/place/xyz status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(hs.URL + "/route")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/route with no anchors status %d, want 400", resp.StatusCode)
	}
}

// TestServeHealthAndRefusals covers the failure surface over the wire:
// health probes in every state, 503 on a wedged server, repair via
// /checkpoint, and 429 + Retry-After from admission control.
func TestServeHealthAndRefusals(t *testing.T) {
	dopts := serverOptions{
		k: 2, expected: 16, window: 4, slack: 1.2, seed: 1, labels: 4, workloadN: 0,
		mailbox: 4, passes: 1, priority: "none", heuristic: "ldg", minAssigned: 4,
		dataDir: t.TempDir(), fsync: "always",
	}
	_, hs := startTestServer(t, dopts)

	var h serve.Health
	if code := getJSON(t, hs.URL+"/healthz", &h); code != http.StatusOK || h.State != "healthy" {
		t.Fatalf("/healthz = %d %+v, want 200 healthy", code, h)
	}
	if code := getJSON(t, hs.URL+"/readyz", &h); code != http.StatusOK || !h.Ready {
		t.Fatalf("/readyz = %d %+v, want 200 ready", code, h)
	}

	// Wedge the server: one injected WAL append failure. The failing batch
	// is applied in memory (reported in Errors, still 200); everything
	// after it must be refused with 503 until a snapshot re-anchors.
	reg := fault.NewRegistry(1)
	reg.FailOnce(fault.WALAppend, fault.ErrNoSpace)
	fault.Enable(reg)
	defer fault.Disable()
	var ing ingestResponse
	if code := postBody(t, hs.URL+"/ingest", "v 0 a\nv 1 b\n", &ing); code != http.StatusOK {
		t.Fatalf("ack-failed ingest status %d, want 200", code)
	}
	if ing.Accepted != 2 || len(ing.Errors) != 1 {
		t.Fatalf("ack-failed ingest = %+v, want 2 accepted + 1 error", ing)
	}
	fault.Disable()

	if code := postBody(t, hs.URL+"/ingest", "v 2 a\n", &ing); code != http.StatusServiceUnavailable {
		t.Fatalf("wedged ingest status %d, want 503", code)
	}
	if ing.Error == "" || ing.Accepted != 0 {
		t.Fatalf("wedged ingest body = %+v, want typed error and nothing accepted", ing)
	}
	if code := getJSON(t, hs.URL+"/healthz", &h); code != http.StatusOK || h.State != "wedged" {
		t.Fatalf("/healthz while wedged = %d %+v, want 200 (alive) + state wedged", code, h)
	}
	if code := getJSON(t, hs.URL+"/readyz", &h); code != http.StatusServiceUnavailable || h.Ready || h.LastPersistErr == "" {
		t.Fatalf("/readyz while wedged = %d %+v, want 503 with sticky persist error", code, h)
	}
	if code := postBody(t, hs.URL+"/drain", "", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("wedged drain status %d, want 503", code)
	}

	// The documented repair: an explicit checkpoint re-anchors the WAL.
	if code := postBody(t, hs.URL+"/checkpoint", "", nil); code != http.StatusOK {
		t.Fatalf("repairing checkpoint status %d", code)
	}
	if code := getJSON(t, hs.URL+"/readyz", &h); code != http.StatusOK || h.State != "healthy" {
		t.Fatalf("/readyz after repair = %d %+v, want 200 healthy", code, h)
	}
	if code := postBody(t, hs.URL+"/ingest", "v 2 a\n", &ing); code != http.StatusOK || ing.Accepted != 1 {
		t.Fatalf("post-repair ingest = %d %+v, want 200 with 1 accepted", code, ing)
	}

	// Admission control: a bucket of one element refuses a three-element
	// batch with 429 and tells the client when to come back.
	aopts := serverOptions{
		k: 2, expected: 16, window: 4, slack: 1.2, seed: 1, labels: 4, workloadN: 0,
		mailbox: 4, passes: 1, priority: "none", heuristic: "ldg", minAssigned: 4,
		admitRate: 1, admitBurst: 1,
	}
	_, ahs := startTestServer(t, aopts)
	resp, err := http.Post(ahs.URL+"/ingest", "text/plain", strings.NewReader("v 0 a\nv 1 b\nv 2 c\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-admission ingest status %d, want 429", resp.StatusCode)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	var aing ingestResponse
	if err := json.NewDecoder(resp.Body).Decode(&aing); err != nil {
		t.Fatal(err)
	}
	if aing.Error == "" || aing.Accepted != 0 {
		t.Fatalf("over-admission body = %+v, want typed error and nothing accepted", aing)
	}
}

// TestServeBinaryIngestE2E covers the binary wire protocol over HTTP:
// the same graph fed as text to one server and as binary frames to
// another must produce identical placements, a garbage body must be a
// clean 400, and nothing from a poisoned stream may be applied.
func TestServeBinaryIngestE2E(t *testing.T) {
	opts := serverOptions{
		k: 2, expected: 16, window: 4, threshold: 0.3, slack: 1.2, seed: 1,
		labels: 4, workloadN: 0, mailbox: 8,
		passes: 1, priority: "none", heuristic: "ldg", minAssigned: 4,
	}
	_, textHS := startTestServer(t, opts)
	_, binHS := startTestServer(t, opts)

	g := graph.Fig1Graph()
	elems, err := stream.FromGraph(g, stream.TemporalOrder, nil)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	var sb strings.Builder
	if err := graph.WriteStreamed(&sb, g); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if code := postBody(t, textHS.URL+"/ingest", sb.String(), nil); code != http.StatusOK {
		t.Fatalf("text ingest status %d", code)
	}
	var ing ingestResponse
	body := framesOf(t, elems, 4)
	if code := postBinary(t, binHS.URL+"/ingest", body, &ing); code != http.StatusOK {
		t.Fatalf("binary ingest status %d (%+v)", code, ing)
	}
	if ing.Accepted != len(elems) || ing.Rejected != 0 {
		t.Fatalf("binary ingest = %+v, want %d accepted", ing, len(elems))
	}
	if want := (len(elems) + 3) / 4; ing.Frames != want {
		t.Fatalf("binary ingest frames = %d, want %d", ing.Frames, want)
	}

	if code := postBody(t, textHS.URL+"/drain", "", nil); code != http.StatusOK {
		t.Fatal("text drain failed")
	}
	if code := postBody(t, binHS.URL+"/drain", "", nil); code != http.StatusOK {
		t.Fatal("binary drain failed")
	}
	for _, v := range g.Vertices() {
		var pt, pb struct {
			Assigned  bool `json:"assigned"`
			Partition int  `json:"partition"`
		}
		getJSON(t, fmt.Sprintf("%s/place/%d", textHS.URL, v), &pt)
		getJSON(t, fmt.Sprintf("%s/place/%d", binHS.URL, v), &pb)
		if pt != pb {
			t.Fatalf("placement of %d diverges: text %+v binary %+v", v, pt, pb)
		}
	}

	// A garbage body under the binary content type is a 400 with a typed
	// error and no application.
	_, badHS := startTestServer(t, opts)
	if code := postBinary(t, badHS.URL+"/ingest", []byte("v 0 a\nv 1 b\n"), &ing); code != http.StatusBadRequest {
		t.Fatalf("garbage binary ingest status %d, want 400", code)
	}
	if ing.Error == "" || ing.Accepted != 0 {
		t.Fatalf("garbage binary ingest body = %+v, want typed error and nothing accepted", ing)
	}
	var st serve.Stats
	getJSON(t, badHS.URL+"/stats", &st)
	if st.Ingested != 0 {
		t.Fatalf("garbage binary stream applied %d elements, want 0", st.Ingested)
	}
}

// TestServeBinaryCrashRecoveryE2E is the crash drill with binary wire
// ingest: a durable server fed binary frames over HTTP is hard-stopped
// mid-stream, restarted from its -data-dir (replaying binary WAL
// records), fed the rest, and must match a never-crashed control on
// every counter and placement.
func TestServeBinaryCrashRecoveryE2E(t *testing.T) {
	const k = 4
	rng := rand.New(rand.NewSource(21))
	alphabet := gen.DefaultAlphabet(4)
	g, err := gen.PlantedPartitionDegrees(600, k, 8, 2, &gen.UniformLabeler{Alphabet: alphabet, Rand: rng}, rng)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	elems, err := stream.FromGraph(g, stream.TemporalOrder, nil)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	first, second := elems[:len(elems)/2], elems[len(elems)/2:]

	opts := serverOptions{
		k: k, expected: g.NumVertices(), window: 32, threshold: 0.05,
		slack: 1.2, seed: 1, labels: 4, workloadN: 8, mailbox: 8,
		passes: 1, priority: "none", heuristic: "loom", minAssigned: 1 << 30,
	}
	_, controlHS := startTestServer(t, opts)
	dopts := opts
	dopts.dataDir = t.TempDir()
	dopts.fsync = "always"
	durable, durableHS := startTestServer(t, dopts)

	// One frame per request keeps one envelope per publication on every
	// server, so even Stats.Epoch must agree between control, durable and
	// post-crash replay (which publishes once per WAL record).
	feed := func(hs *httptest.Server, elems []stream.Element) int {
		accepted := 0
		for i := 0; i < len(elems); i += 64 {
			end := min(i+64, len(elems))
			var ing ingestResponse
			if code := postBinary(t, hs.URL+"/ingest", framesOf(t, elems[i:end], 64), &ing); code != http.StatusOK {
				t.Fatalf("binary ingest status %d (%+v)", code, ing)
			}
			accepted += ing.Accepted
		}
		return accepted
	}
	accCtl := feed(controlHS, first)
	accDur := feed(durableHS, first)
	if accCtl != accDur {
		t.Fatalf("accept mismatch before crash: control %d durable %d", accCtl, accDur)
	}

	// Crash: hard stop, no checkpoint.
	durable.Abort()
	durableHS.Close()

	restarted, restartedHS := startTestServer(t, dopts)
	rst := restarted.Stats()
	if rst.Persist == nil {
		t.Fatal("restarted server has no persistence stats")
	}
	if rst.Persist.Recover.ReplayedElements != accDur {
		t.Fatalf("replayed %d elements, want the %d accepted before the crash",
			rst.Persist.Recover.ReplayedElements, accDur)
	}

	feed(controlHS, second)
	feed(restartedHS, second)
	if code := postBody(t, controlHS.URL+"/drain", "", nil); code != http.StatusOK {
		t.Fatal("control drain failed")
	}
	if code := postBody(t, restartedHS.URL+"/drain", "", nil); code != http.StatusOK {
		t.Fatal("restarted drain failed")
	}

	var stCtl, stDur serve.Stats
	getJSON(t, controlHS.URL+"/stats", &stCtl)
	getJSON(t, restartedHS.URL+"/stats", &stDur)
	stCtl.MailboxDepth, stDur.MailboxDepth = 0, 0
	stCtl.Persist, stDur.Persist = nil, nil
	ctlJSON, _ := json.Marshal(stCtl)
	durJSON, _ := json.Marshal(stDur)
	if string(ctlJSON) != string(durJSON) {
		t.Fatalf("stats diverge after binary crash recovery:\ncontrol   %s\nrestarted %s", ctlJSON, durJSON)
	}
	for _, v := range g.Vertices() {
		var pc, pd struct {
			Assigned  bool `json:"assigned"`
			Partition int  `json:"partition"`
		}
		getJSON(t, fmt.Sprintf("%s/place/%d", controlHS.URL, v), &pc)
		getJSON(t, fmt.Sprintf("%s/place/%d", restartedHS.URL, v), &pd)
		if pc != pd {
			t.Fatalf("placement of %d diverges: control %+v restarted %+v", v, pc, pd)
		}
	}
}

// churnTextOf renders elems in the text stream codec, removals included.
func churnTextOf(elems []stream.Element) string {
	var sb strings.Builder
	for i := range elems {
		el := &elems[i]
		switch el.Kind {
		case stream.VertexElement:
			fmt.Fprintf(&sb, "v %d %s\n", el.V, el.Label)
		case stream.EdgeElement:
			fmt.Fprintf(&sb, "e %d %d\n", el.V, el.U)
		case stream.RemoveVertexElement:
			fmt.Fprintf(&sb, "rv %d\n", el.V)
		case stream.RemoveEdgeElement:
			fmt.Fprintf(&sb, "re %d %d\n", el.V, el.U)
		}
	}
	return sb.String()
}

// spliceChurn injects deterministic, never-rejectable removals into an
// insert-only stream: vertices still referenced later are re-added
// immediately, vertices past their last reference are removed for good.
func spliceChurn(elems []stream.Element, seed int64) (out []stream.Element, sticky []graph.VertexID) {
	lastRef := make(map[graph.VertexID]int)
	for i, el := range elems {
		lastRef[el.V] = i
		if el.Kind == stream.EdgeElement {
			lastRef[el.U] = i
		}
	}
	rng := rand.New(rand.NewSource(seed))
	labels := make(map[graph.VertexID]graph.Label)
	var liveV []graph.VertexID
	var liveE [][2]graph.VertexID
	for i, el := range elems {
		out = append(out, el)
		switch el.Kind {
		case stream.VertexElement:
			labels[el.V] = el.Label
			liveV = append(liveV, el.V)
		case stream.EdgeElement:
			liveE = append(liveE, [2]graph.VertexID{el.V, el.U})
		}
		switch x := rng.Float64(); {
		case x < 0.04 && len(liveV) > 0:
			j := rng.Intn(len(liveV))
			v := liveV[j]
			out = append(out, stream.Element{Kind: stream.RemoveVertexElement, V: v})
			keep := liveE[:0]
			for _, e := range liveE {
				if e[0] != v && e[1] != v {
					keep = append(keep, e)
				}
			}
			liveE = keep
			if lastRef[v] > i {
				out = append(out, stream.Element{Kind: stream.VertexElement, V: v, Label: labels[v]})
			} else {
				liveV[j] = liveV[len(liveV)-1]
				liveV = liveV[:len(liveV)-1]
				sticky = append(sticky, v)
			}
		case x < 0.08 && len(liveE) > 0:
			j := rng.Intn(len(liveE))
			e := liveE[j]
			liveE[j] = liveE[len(liveE)-1]
			liveE = liveE[:len(liveE)-1]
			out = append(out, stream.Element{Kind: stream.RemoveEdgeElement, V: e[0], U: e[1]})
		}
	}
	return out, sticky
}

// TestServeChurnCrashRecoveryE2E is the acceptance drill for deletions
// over the wire: a churny stream (adds, removals, re-adds) is fed over
// HTTP to a durable server; after a mid-stream checkpoint the server is
// hard-killed with removal records in the unsnapshotted WAL tail,
// restarted from -data-dir, fed the rest, and must answer every /place
// (not-found for deleted vertices included) and every /stats counter
// exactly like a control that never went down. The control is durable
// too and checkpoints at the same stream position: a checkpoint is a
// drain barrier, so equivalence requires the same barrier schedule
// (exactly how the chaos harness replays its control).
func TestServeChurnCrashRecoveryE2E(t *testing.T) {
	const k = 4
	rng := rand.New(rand.NewSource(33))
	alphabet := gen.DefaultAlphabet(4)
	g, err := gen.PlantedPartitionDegrees(600, k, 8, 2, &gen.UniformLabeler{Alphabet: alphabet, Rand: rng}, rng)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	base, err := stream.FromGraph(g, stream.TemporalOrder, nil)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	elems, sticky := spliceChurn(base, 29)
	snapAt, cut := len(elems)*2/5, len(elems)*3/5
	// The WAL tail behind the crash (after the checkpoint) must carry
	// removals, including at least one vertex that never comes back.
	tailRemovals := 0
	var preSticky []graph.VertexID
	for _, el := range elems[snapAt:cut] {
		if el.Kind == stream.RemoveVertexElement || el.Kind == stream.RemoveEdgeElement {
			tailRemovals++
		}
	}
	for _, v := range sticky {
		for _, el := range elems[snapAt:cut] {
			if el.Kind == stream.RemoveVertexElement && el.V == v {
				preSticky = append(preSticky, v)
				break
			}
		}
	}
	if tailRemovals == 0 || len(preSticky) == 0 {
		t.Fatalf("WAL tail carries %d removals, %d sticky — widen the schedule", tailRemovals, len(preSticky))
	}

	opts := serverOptions{
		k: k, expected: g.NumVertices(), window: 32, threshold: 0.05,
		slack: 1.2, seed: 1, labels: 4, workloadN: 8, mailbox: 8,
		passes: 1, priority: "none", heuristic: "loom", minAssigned: 1 << 30,
		dataDir: t.TempDir(), fsync: "always",
	}
	_, controlHS := startTestServer(t, opts)
	dopts := opts
	dopts.dataDir = t.TempDir()
	durable, durableHS := startTestServer(t, dopts)

	feed := func(hs *httptest.Server, body string) ingestResponse {
		t.Helper()
		var ing ingestResponse
		if code := postBody(t, hs.URL+"/ingest", body, &ing); code != http.StatusOK {
			t.Fatalf("ingest status %d", code)
		}
		return ing
	}
	first, tail, second := churnTextOf(elems[:snapAt]), churnTextOf(elems[snapAt:cut]), churnTextOf(elems[cut:])
	feed(controlHS, first)
	feed(durableHS, first)
	if code := postBody(t, controlHS.URL+"/checkpoint", "", nil); code != http.StatusOK {
		t.Fatalf("control checkpoint status %d", code)
	}
	if code := postBody(t, durableHS.URL+"/checkpoint", "", nil); code != http.StatusOK {
		t.Fatalf("durable checkpoint status %d", code)
	}
	ingCtl := feed(controlHS, tail)
	ingDur := feed(durableHS, tail)
	if ingCtl.Accepted != ingDur.Accepted || ingDur.Rejected != 0 {
		t.Fatalf("accept mismatch before crash: control %+v durable %+v", ingCtl, ingDur)
	}

	// Hard crash: the removals fed after the checkpoint exist only as WAL
	// tail records now.
	durable.Abort()
	durableHS.Close()

	restarted, restartedHS := startTestServer(t, dopts)
	rst := restarted.Stats()
	if rst.Persist == nil {
		t.Fatal("restarted server has no persistence stats")
	}
	if !rst.Persist.Recover.SnapshotLoaded {
		t.Fatalf("recovery ignored the checkpoint snapshot: %+v", rst.Persist.Recover)
	}

	feed(controlHS, second)
	feed(restartedHS, second)
	if code := postBody(t, controlHS.URL+"/drain", "", nil); code != http.StatusOK {
		t.Fatalf("control drain status %d", code)
	}
	if code := postBody(t, restartedHS.URL+"/drain", "", nil); code != http.StatusOK {
		t.Fatalf("restarted drain status %d", code)
	}

	var stCtl, stDur serve.Stats
	if code := getJSON(t, controlHS.URL+"/stats", &stCtl); code != http.StatusOK {
		t.Fatal("control /stats failed")
	}
	if code := getJSON(t, restartedHS.URL+"/stats", &stDur); code != http.StatusOK {
		t.Fatal("restarted /stats failed")
	}
	stCtl.MailboxDepth, stDur.MailboxDepth = 0, 0
	stCtl.Persist, stDur.Persist = nil, nil
	// Replay publishes per WAL record while live ingest publishes per
	// batch, and the snapshot reload adds an epoch: the only cosmetic
	// divergence the recovery contract allows.
	stCtl.Epoch, stDur.Epoch = 0, 0
	ctlJSON, _ := json.Marshal(stCtl)
	durJSON, _ := json.Marshal(stDur)
	if string(ctlJSON) != string(durJSON) {
		t.Fatalf("stats diverge after churny crash recovery:\ncontrol   %s\nrestarted %s", ctlJSON, durJSON)
	}

	for _, v := range g.Vertices() {
		var pc, pd struct {
			Assigned  bool `json:"assigned"`
			Partition int  `json:"partition"`
		}
		if code := getJSON(t, fmt.Sprintf("%s/place/%d", controlHS.URL, v), &pc); code != http.StatusOK {
			t.Fatalf("control /place/%d status %d", v, code)
		}
		if code := getJSON(t, fmt.Sprintf("%s/place/%d", restartedHS.URL, v), &pd); code != http.StatusOK {
			t.Fatalf("restarted /place/%d status %d", v, code)
		}
		if pc != pd {
			t.Fatalf("placement of %d diverges: control %+v restarted %+v", v, pc, pd)
		}
	}
	for _, v := range preSticky {
		var pd struct {
			Assigned bool `json:"assigned"`
		}
		if code := getJSON(t, fmt.Sprintf("%s/place/%d", restartedHS.URL, v), &pd); code != http.StatusOK || pd.Assigned {
			t.Fatalf("/place/%d after recovery = assigned %v (status %d); the deletion was in the replayed tail", v, pd.Assigned, code)
		}
	}
}
