package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"loom/internal/graph"
	"loom/internal/serve"
)

func startTestServer(t *testing.T, o serverOptions) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv, err := buildServer(o)
	if err != nil {
		t.Fatalf("buildServer: %v", err)
	}
	hs := httptest.NewServer(newMux(srv))
	t.Cleanup(func() {
		hs.Close()
		srv.Stop()
	})
	return srv, hs
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return resp.StatusCode
}

func postBody(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("POST %s: decode: %v", url, err)
	}
	return resp.StatusCode
}

// TestServeEndToEnd is the HTTP smoke test: start the server, ingest the
// paper's Figure 1 graph over the wire in stream layout, query every
// placement, and assert a consistent k-way assignment.
func TestServeEndToEnd(t *testing.T) {
	const k = 2
	_, hs := startTestServer(t, serverOptions{
		k: k, expected: 16, window: 4, threshold: 0.3, slack: 1.2, seed: 1,
		labels: 4, workloadN: 0, mailbox: 8,
		passes: 1, priority: "none", heuristic: "ldg", minAssigned: 4,
	})

	g := graph.Fig1Graph()
	var sb strings.Builder
	if err := graph.WriteStreamed(&sb, g); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var ing ingestResponse
	if code := postBody(t, hs.URL+"/ingest", sb.String(), &ing); code != http.StatusOK {
		t.Fatalf("/ingest status %d", code)
	}
	wantElems := g.NumVertices() + g.NumEdges()
	if ing.Accepted != wantElems || ing.Rejected != 0 {
		t.Fatalf("/ingest accepted=%d rejected=%d, want %d/0 (%v)", ing.Accepted, ing.Rejected, wantElems, ing.Errors)
	}

	// Drain so the small graph's window residents get placements too.
	var drain struct {
		Assigned int `json:"assigned"`
	}
	if code := postBody(t, hs.URL+"/drain", "", &drain); code != http.StatusOK {
		t.Fatalf("/drain status %d", code)
	}
	if drain.Assigned != g.NumVertices() {
		t.Fatalf("/drain assigned=%d, want %d", drain.Assigned, g.NumVertices())
	}

	// Every vertex is placed in [0, k).
	counts := make([]int, k)
	for _, v := range g.Vertices() {
		var place struct {
			Vertex    int64 `json:"vertex"`
			Assigned  bool  `json:"assigned"`
			Partition int   `json:"partition"`
		}
		if code := getJSON(t, fmt.Sprintf("%s/place/%d", hs.URL, v), &place); code != http.StatusOK {
			t.Fatalf("/place/%d status %d", v, code)
		}
		if !place.Assigned {
			t.Fatalf("vertex %d unassigned after drain", v)
		}
		if place.Partition < 0 || place.Partition >= k {
			t.Fatalf("vertex %d in partition %d, want [0,%d)", v, place.Partition, k)
		}
		counts[place.Partition]++
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != g.NumVertices() {
		t.Fatalf("placed %d vertices, want %d", total, g.NumVertices())
	}

	// Stats agree with the per-vertex view.
	var st serve.Stats
	if code := getJSON(t, hs.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("/stats status %d", code)
	}
	if st.K != k || st.Assigned != g.NumVertices() || st.Vertices != g.NumVertices() || st.Edges != g.NumEdges() {
		t.Fatalf("stats mismatch: %+v", st)
	}
	for i, c := range counts {
		if st.Sizes[i] != c {
			t.Fatalf("sizes[%d]=%d, want %d", i, st.Sizes[i], c)
		}
	}

	// Routing picks a real shard for known anchors.
	var route serve.RouteDecision
	if code := getJSON(t, hs.URL+"/route?v=1&v=2&v=3", &route); code != http.StatusOK {
		t.Fatalf("/route status %d", code)
	}
	if route.Known != 3 || route.Target < 0 || int(route.Target) >= k {
		t.Fatalf("route = %+v", route)
	}

	// A forced restream adopts and reports.
	var rep serve.RestreamReport
	if code := postBody(t, hs.URL+"/restream?wait=1", "", &rep); code != http.StatusOK {
		t.Fatalf("/restream status %d", code)
	}
	if rep.Trigger != "manual" || rep.Err != "" {
		t.Fatalf("restream report = %+v", rep)
	}
	if code := getJSON(t, hs.URL+"/stats", &st); code != http.StatusOK || st.Restreams != 1 {
		t.Fatalf("restreams=%d after manual restream", st.Restreams)
	}
}

func TestServeIngestErrors(t *testing.T) {
	_, hs := startTestServer(t, serverOptions{
		k: 2, expected: 16, window: 4, slack: 1.2, labels: 2, workloadN: 0,
		mailbox: 4, passes: 1, priority: "none", heuristic: "loom", minAssigned: 4,
	})

	// Malformed codec input is a 400.
	if code := postBody(t, hs.URL+"/ingest", "v 0 a\nnot-a-record\n", nil); code != http.StatusBadRequest {
		t.Fatalf("malformed ingest status %d, want 400", code)
	}
	// Element-level rejections (duplicate vertex) are reported, not fatal.
	var ing ingestResponse
	if code := postBody(t, hs.URL+"/ingest", "v 0 a\nv 1 b\ne 0 1\n", &ing); code != http.StatusOK {
		t.Fatalf("ingest status %d", code)
	}
	if code := postBody(t, hs.URL+"/ingest", "v 1 b\nv 2 a\n", &ing); code != http.StatusOK {
		t.Fatalf("ingest status %d", code)
	}
	if ing.Rejected != 1 || ing.Accepted != 1 || len(ing.Errors) == 0 {
		t.Fatalf("ingest response = %+v, want 1 rejected / 1 accepted", ing)
	}

	if code := postBody(t, hs.URL+"/drain", "", nil); code != http.StatusOK {
		t.Fatalf("drain status %d", code)
	}
	resp, err := http.Get(hs.URL + "/place/xyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/place/xyz status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(hs.URL + "/route")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/route with no anchors status %d, want 400", resp.StatusCode)
	}
}
