package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/query"
	"loom/internal/stream"
)

func TestParseOrder(t *testing.T) {
	cases := map[string]stream.Order{
		"random":      stream.RandomOrder,
		"bfs":         stream.BFSOrdering,
		"dfs":         stream.DFSOrdering,
		"adversarial": stream.AdversarialOrder,
		"temporal":    stream.TemporalOrder,
	}
	for s, want := range cases {
		got, err := parseOrder(s)
		if err != nil || got != want {
			t.Errorf("parseOrder(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseOrder("nope"); err == nil {
		t.Error("unknown order should error")
	}
}

func TestAssignmentRoundTrip(t *testing.T) {
	a := partition.MustNewAssignment(3)
	for i := 0; i < 10; i++ {
		if err := a.Set(graph.VertexID(i*7), partition.ID(i%3)); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "a.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeAssignment(f, a); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := readAssignment(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.K() != 3 || back.Len() != 10 {
		t.Fatalf("round trip k=%d len=%d", back.K(), back.Len())
	}
	a.EachVertex(func(v graph.VertexID, p partition.ID) {
		if back.Get(v) != p {
			t.Errorf("vertex %d: %d != %d", v, back.Get(v), p)
		}
	})
}

func TestReadAssignmentErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("p x y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readAssignment(bad); err == nil {
		t.Error("malformed line should error")
	}
	if _, err := readAssignment(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file should error")
	}
}

func TestReadAssignmentInfersK(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.txt")
	if err := os.WriteFile(path, []byte("p 1 0\np 2 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := readAssignment(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.K() != 5 {
		t.Fatalf("inferred k = %d, want 5", a.K())
	}
}

// TestCLIEndToEnd drives generate -> partition -> evaluate through the
// command functions with real files.
func TestCLIEndToEnd(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.txt")
	apath := filepath.Join(dir, "a.txt")

	if err := cmdGenerate([]string{"-kind", "ba", "-n", "300", "-m", "2", "-labels", "3", "-seed", "5", "-out", gpath}); err != nil {
		t.Fatalf("generate: %v", err)
	}
	g, err := loadGraph(gpath)
	if err != nil {
		t.Fatalf("loadGraph: %v", err)
	}
	if g.NumVertices() != 300 {
		t.Fatalf("|V| = %d, want 300", g.NumVertices())
	}

	for _, p := range []string{"hash", "ldg", "fennel", "multilevel", "loom"} {
		args := []string{"-graph", gpath, "-k", "4", "-partitioner", p, "-seed", "5", "-out", apath}
		if p == "loom" {
			args = append(args, "-window", "64", "-workload", "6")
		}
		if err := cmdPartition(args); err != nil {
			t.Fatalf("partition %s: %v", p, err)
		}
		a, err := readAssignment(apath)
		if err != nil {
			t.Fatalf("readAssignment after %s: %v", p, err)
		}
		if a.Len() != 300 {
			t.Fatalf("%s assigned %d, want 300", p, a.Len())
		}
	}

	// LOOM with the future-work flags.
	if err := cmdPartition([]string{
		"-graph", gpath, "-k", "4", "-partitioner", "loom", "-seed", "5",
		"-window", "64", "-workload", "6", "-weighted", "-maxgroup", "4",
		"-out", apath,
	}); err != nil {
		t.Fatalf("partition loom (future-work flags): %v", err)
	}
	if a, err := readAssignment(apath); err != nil || a.Len() != 300 {
		t.Fatalf("future-work run: %v, len=%d", err, a.Len())
	}

	// Restreaming: ldg, fennel and loom accept the flags; multilevel and
	// non-prior-aware heuristics reject them.
	for _, p := range []string{"ldg", "fennel", "loom"} {
		args := []string{
			"-graph", gpath, "-k", "4", "-partitioner", p, "-seed", "5",
			"-restream-passes", "2", "-restream-priority", "ambivalence", "-out", apath,
		}
		if p == "loom" {
			args = append(args, "-window", "64", "-workload", "6")
		}
		if err := cmdPartition(args); err != nil {
			t.Fatalf("partition %s restreamed: %v", p, err)
		}
		if a, err := readAssignment(apath); err != nil || a.Len() != 300 {
			t.Fatalf("restreamed %s: %v, len=%d", p, err, a.Len())
		}
	}
	if err := cmdPartition([]string{
		"-graph", gpath, "-partitioner", "multilevel", "-restream-passes", "1",
	}); err == nil {
		t.Fatal("multilevel with -restream-passes should error")
	}
	if err := cmdPartition([]string{
		"-graph", gpath, "-partitioner", "hash", "-restream-passes", "1",
	}); err == nil {
		t.Fatal("hash with -restream-passes should error (not PriorAware)")
	}
	if err := cmdPartition([]string{
		"-graph", gpath, "-partitioner", "ldg", "-restream-priority", "nope",
	}); err == nil {
		t.Fatal("unknown restream priority should error")
	}
	if err := cmdPartition([]string{
		"-graph", gpath, "-partitioner", "ldg", "-restream-priority", "degree",
	}); err == nil {
		t.Fatal("restream priority without -restream-passes should error")
	}

	// LOOM with an explicit workload file.
	wpath := filepath.Join(dir, "w.txt")
	wl := "query probe 2 path a b c\nquery ring 1 cycle a b c\n"
	if err := os.WriteFile(wpath, []byte(wl), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdPartition([]string{
		"-graph", gpath, "-k", "4", "-partitioner", "loom", "-seed", "5",
		"-window", "64", "-workload-file", wpath, "-out", apath,
	}); err != nil {
		t.Fatalf("partition loom (workload file): %v", err)
	}
	if err := cmdPartition([]string{
		"-graph", gpath, "-partitioner", "loom", "-workload-file", filepath.Join(dir, "missing.txt"),
	}); err == nil {
		t.Fatal("missing workload file should error")
	}

	if err := cmdEvaluate([]string{"-graph", gpath, "-assign", apath, "-workload", "4", "-seed", "5"}); err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	if err := cmdInspect([]string{"-workload", "0"}); err != nil {
		t.Fatalf("inspect: %v", err)
	}
}

// TestCLIFileOrderStreaming exercises the incremental ingest path:
// generate in stream layout, partition with -order file (no materialised
// graph up front), both with and without the -expected prescan.
func TestCLIFileOrderStreaming(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.txt")
	apath := filepath.Join(dir, "a.txt")

	if err := cmdGenerate([]string{"-kind", "ba", "-n", "250", "-m", "2", "-labels", "3", "-seed", "9", "-layout", "stream", "-out", gpath}); err != nil {
		t.Fatalf("generate -layout stream: %v", err)
	}
	// Stream layout parses with the batch codec too.
	g, err := loadGraph(gpath)
	if err != nil {
		t.Fatalf("loadGraph: %v", err)
	}
	if g.NumVertices() != 250 {
		t.Fatalf("|V| = %d, want 250", g.NumVertices())
	}

	for _, extra := range [][]string{
		nil,                  // prescan
		{"-expected", "250"}, // explicit capacity
		{"-workload", "0"},   // no workload: windowed LDG
	} {
		args := append([]string{
			"-graph", gpath, "-k", "4", "-partitioner", "loom", "-order", "file",
			"-window", "32", "-seed", "9", "-out", apath,
		}, extra...)
		if err := cmdPartition(args); err != nil {
			t.Fatalf("partition -order file %v: %v", extra, err)
		}
		a, err := readAssignment(apath)
		if err != nil {
			t.Fatalf("readAssignment: %v", err)
		}
		if a.Len() != 250 || a.K() != 4 {
			t.Fatalf("file-order run: len=%d k=%d", a.Len(), a.K())
		}
	}

	if err := cmdPartition([]string{"-graph", gpath, "-partitioner", "ldg", "-order", "file"}); err == nil {
		t.Error("-order file with a non-loom partitioner should error")
	}
	if err := cmdPartition([]string{"-graph", gpath, "-partitioner", "loom", "-order", "file", "-restream-passes", "1"}); err == nil {
		t.Error("-order file with restreaming should error")
	}
	if err := cmdGenerate([]string{"-kind", "ba", "-n", "10", "-layout", "nope", "-out", filepath.Join(dir, "x.txt")}); err == nil {
		t.Error("unknown layout should error")
	}
}

// TestCLIEvaluateStore wires the sharded store into evaluate: deploy,
// traverse, replicate, and verify messages do not increase.
func TestCLIEvaluateStore(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.txt")
	apath := filepath.Join(dir, "a.txt")
	if err := cmdGenerate([]string{"-kind", "community", "-n", "800", "-k", "4", "-labels", "3", "-seed", "3", "-out", gpath}); err != nil {
		t.Fatalf("generate: %v", err)
	}
	if err := cmdPartition([]string{"-graph", gpath, "-k", "4", "-partitioner", "ldg", "-seed", "3", "-out", apath}); err != nil {
		t.Fatalf("partition: %v", err)
	}
	if err := cmdEvaluate([]string{
		"-graph", gpath, "-assign", apath, "-workload", "8", "-seed", "3",
		"-store", "-replicas", "16", "-match-limit", "50",
	}); err != nil {
		t.Fatalf("evaluate -store: %v", err)
	}
	// Structural-only store deployment (no workload).
	if err := cmdEvaluate([]string{
		"-graph", gpath, "-assign", apath, "-workload", "0", "-store",
	}); err != nil {
		t.Fatalf("evaluate -store -workload 0: %v", err)
	}
}

func TestPathLabels(t *testing.T) {
	if labels, ok := query.PathLabels(graph.Path("a", "b", "c")); !ok || len(labels) != 3 {
		t.Fatalf("path: %v %v", labels, ok)
	}
	if _, ok := query.PathLabels(graph.Cycle("a", "b", "c")); ok {
		t.Fatal("cycle misclassified as path")
	}
	if _, ok := query.PathLabels(graph.Star("a", "b", "c", "d")); ok {
		t.Fatal("star misclassified as path")
	}
	if labels, ok := query.PathLabels(graph.Star("a", "b")); !ok || len(labels) != 2 {
		// A two-vertex star is a path.
		t.Fatalf("2-star: %v %v", labels, ok)
	}
}

func TestCmdGenerateErrors(t *testing.T) {
	if err := cmdGenerate([]string{"-kind", "nope"}); err == nil ||
		!strings.Contains(err.Error(), "unknown generator") {
		t.Errorf("unknown generator should error, got %v", err)
	}
}

func TestCmdPartitionErrors(t *testing.T) {
	if err := cmdPartition([]string{}); err == nil {
		t.Error("missing -graph should error")
	}
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(gpath, []byte("v 1 a\nv 2 b\ne 1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdPartition([]string{"-graph", gpath, "-partitioner", "nope"}); err == nil {
		t.Error("unknown partitioner should error")
	}
	if err := cmdPartition([]string{"-graph", gpath, "-order", "nope"}); err == nil {
		t.Error("unknown order should error")
	}
}
