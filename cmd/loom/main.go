// Command loom is the command-line front end to the LOOM workload-aware
// streaming graph partitioner.
//
// Usage:
//
//	loom generate  -kind ba -n 10000 -out graph.txt [-labels 4] [-seed 1]
//	loom partition -graph graph.txt -k 8 [-partitioner loom|ldg|fennel|hash|multilevel]
//	               [-order random|bfs|dfs|adversarial|temporal]
//	               [-window 256] [-threshold 0.05] [-workload n] [-out assignment.txt]
//	               [-restream-passes 0] [-restream-priority none|degree|ambivalence|cutdegree]
//	loom evaluate  -graph graph.txt -assign assignment.txt [-workload n] [-samples 200]
//	loom inspect   [-workload n] [-threshold 0.1]
//
// The graph file format is the text codec of internal/graph ("v <id>
// <label>" / "e <u> <v>" lines). Workloads are synthesised with -workload N
// (N queries of the default path/star/cycle/tree mix over the graph's
// label alphabet); deterministic under -seed.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"loom/internal/cluster"
	"loom/internal/core"
	"loom/internal/gen"
	"loom/internal/graph"
	"loom/internal/metrics"
	"loom/internal/motif"
	"loom/internal/partition"
	"loom/internal/query"
	"loom/internal/signature"
	"loom/internal/store"
	"loom/internal/stream"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "partition":
		err = cmdPartition(os.Args[2:])
	case "evaluate":
		err = cmdEvaluate(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "loom: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "loom: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `loom - workload-aware streaming graph partitioner

commands:
  generate   synthesise a labelled graph (ba, er, ws, rmat, community, grid)
  partition  partition a graph stream (loom, ldg, fennel, hash, multilevel)
  evaluate   score an assignment: cut, balance, traversal probability
  inspect    print the TPSTry++ of a synthetic workload

run 'loom <command> -h' for flags`)
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	kind := fs.String("kind", "ba", "generator: ba|er|ws|rmat|community|grid")
	layout := fs.String("layout", "sorted", "file layout: sorted (all vertices, then all edges) or stream (each vertex followed by its edges to earlier vertices; required for 'loom partition -order file')")
	n := fs.Int("n", 10000, "vertex count (scale for rmat)")
	m := fs.Int("m", 2, "edges per vertex (ba), total edges (er), ring degree (ws), edge factor (rmat)")
	k := fs.Int("k", 8, "communities (community)")
	labels := fs.Int("labels", 4, "label alphabet size")
	zipf := fs.Float64("zipf", 0, "label Zipf skew (0 = uniform)")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *layout != "sorted" && *layout != "stream" {
		return fmt.Errorf("unknown layout %q", *layout)
	}
	r := rand.New(rand.NewSource(*seed))
	alphabet := gen.DefaultAlphabet(*labels)
	var lab gen.Labeler
	if *zipf > 0 {
		lab = gen.NewZipfLabeler(alphabet, *zipf, r)
	} else {
		lab = &gen.UniformLabeler{Alphabet: alphabet, Rand: r}
	}
	var g *graph.Graph
	var err error
	switch *kind {
	case "ba":
		g, err = gen.BarabasiAlbert(*n, *m, lab, r)
	case "er":
		g, err = gen.ErdosRenyi(*n, *m, lab, r)
	case "ws":
		g, err = gen.WattsStrogatz(*n, *m, 0.1, lab, r)
	case "rmat":
		g, err = gen.RMAT(*n, *m, 0.57, 0.19, 0.19, 0.05, lab, r)
	case "community":
		pIn := 40.0 / float64(*n)
		g, err = gen.PlantedPartition(*n, *k, pIn*8, pIn/4, lab, r)
	case "grid":
		g, err = gen.Grid(*n, *n, lab)
	default:
		return fmt.Errorf("unknown generator %q", *kind)
	}
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	fmt.Fprintf(bw, "# %s graph |V|=%d |E|=%d seed=%d\n", *kind, g.NumVertices(), g.NumEdges(), *seed)
	if *layout == "stream" {
		return graph.WriteStreamed(bw, g)
	}
	return graph.Write(bw, g)
}

// loadGraph reads a graph file.
func loadGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.Read(bufio.NewReader(f))
}

// makeWorkload synthesises the default query mix over the graph's labels.
func makeWorkload(g *graph.Graph, count int, seed int64) (*query.Workload, error) {
	return query.GenerateWorkload(query.DefaultMix(count), g.Labels(), rand.New(rand.NewSource(seed)))
}

// loadWorkload resolves the shared -workload-file / -workload flag pair
// (query.ResolveWorkload), describing an explicit file on stderr.
func loadWorkload(workloadFile string, workloadN int, alphabet []graph.Label, seed int64) (*query.Workload, error) {
	w, err := query.ResolveWorkload(workloadFile, workloadN, alphabet, seed)
	if err != nil {
		return nil, err
	}
	if workloadFile != "" {
		fmt.Fprint(os.Stderr, query.Describe(w))
	}
	return w, nil
}

// buildTrie captures a workload into a TPSTry++ over the graph's alphabet.
func buildTrie(g *graph.Graph, w *query.Workload) (*motif.Trie, error) {
	trie := motif.New(signature.NewFactoryForAlphabet(g.Labels()), motif.Options{MaxMotifVertices: 4})
	if w != nil {
		if err := w.BuildTrie(trie); err != nil {
			return nil, err
		}
	}
	return trie, nil
}

func parseOrder(s string) (stream.Order, error) {
	switch s {
	case "random":
		return stream.RandomOrder, nil
	case "bfs":
		return stream.BFSOrdering, nil
	case "dfs":
		return stream.DFSOrdering, nil
	case "adversarial":
		return stream.AdversarialOrder, nil
	case "temporal":
		return stream.TemporalOrder, nil
	}
	return 0, fmt.Errorf("unknown order %q", s)
}

func cmdPartition(args []string) error {
	fs := flag.NewFlagSet("partition", flag.ExitOnError)
	graphPath := fs.String("graph", "", "graph file (required)")
	k := fs.Int("k", 8, "number of partitions")
	part := fs.String("partitioner", "loom", "loom|ldg|fennel|hash|greedy|balanced|chunking|multilevel")
	orderName := fs.String("order", "random", "stream order: random|bfs|dfs|adversarial|temporal|file (decode the graph file incrementally in its own order; loom only)")
	expected := fs.Int("expected", 0, "expected vertex count for capacity planning with -order file (0 = prescan the file)")
	labelsN := fs.Int("labels", 4, "label alphabet size for the synthetic workload with -order file")
	window := fs.Int("window", 256, "LOOM window size")
	threshold := fs.Float64("threshold", 0.05, "LOOM motif frequency threshold T")
	workloadN := fs.Int("workload", 16, "synthetic workload size for LOOM (0 = none)")
	workloadFile := fs.String("workload-file", "", "workload file (query text format); overrides -workload")
	weighted := fs.Bool("weighted", false, "LOOM: weight LDG edges by TPSTry++ traversal probabilities (future-work E12)")
	maxGroup := fs.Int("maxgroup", 0, "LOOM: split motif groups larger than this (0 = unlimited, future-work E13)")
	slack := fs.Float64("slack", 1.2, "capacity slack factor")
	seed := fs.Int64("seed", 1, "random seed")
	restreamPasses := fs.Int("restream-passes", 0, "restreaming passes after the initial one (loom|ldg|fennel)")
	restreamPriority := fs.String("restream-priority", "none", "between-pass stream reordering: none|degree|ambivalence|cutdegree")
	out := fs.String("out", "", "assignment output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		return fmt.Errorf("-graph is required")
	}
	if *restreamPasses < 0 {
		return fmt.Errorf("-restream-passes %d < 0", *restreamPasses)
	}
	priority, err := partition.ParsePriority(*restreamPriority)
	if err != nil {
		return err
	}
	if priority != partition.PriorityNone && *restreamPasses == 0 {
		return fmt.Errorf("-restream-priority %s requires -restream-passes > 0", priority)
	}
	if *orderName == "file" {
		if *part != "loom" {
			return fmt.Errorf("-order file streams elements straight into LOOM; use -partitioner loom")
		}
		if *restreamPasses > 0 {
			return fmt.Errorf("-restream-passes needs the full graph; not supported with -order file")
		}
		return partitionFromFile(*graphPath, *workloadFile, *workloadN, *labelsN, *expected,
			core.Config{
				Partition:  partition.Config{K: *k, Slack: *slack, Seed: *seed},
				WindowSize: *window, Threshold: *threshold,
				TraversalWeighting: *weighted, MaxGroupSize: *maxGroup,
			}, *seed, *out)
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	order, err := parseOrder(*orderName)
	if err != nil {
		return err
	}
	cfg := partition.Config{K: *k, ExpectedVertices: g.NumVertices(), Slack: *slack, Seed: *seed}
	rng := rand.New(rand.NewSource(*seed + 100))
	rcfg := partition.RestreamConfig{Passes: 1 + *restreamPasses, Priority: priority}

	var a *partition.Assignment
	switch *part {
	case "loom":
		w, err := loadWorkload(*workloadFile, *workloadN, g.Labels(), *seed)
		if err != nil {
			return err
		}
		trie, err := buildTrie(g, w)
		if err != nil {
			return err
		}
		ccfg := core.Config{
			Partition: cfg, WindowSize: *window, Threshold: *threshold,
			TraversalWeighting: *weighted, MaxGroupSize: *maxGroup,
		}
		if *restreamPasses > 0 {
			// Workload-aware restreaming: re-run the full LOOM partitioner
			// per pass, seeded with the previous assignment.
			base, err := stream.VertexOrder(g, order, rng)
			if err != nil {
				return err
			}
			res, err := core.Restream(g, trie, ccfg, rcfg, base, nil)
			if err != nil {
				return err
			}
			printPassStats(res)
			a = res.Final
			break
		}
		elems, err := stream.FromGraph(g, order, rng)
		if err != nil {
			return err
		}
		p, err := core.New(ccfg, trie)
		if err != nil {
			return err
		}
		if a, err = p.Run(stream.NewSliceSource(elems)); err != nil {
			return err
		}
		st := p.Stats()
		fmt.Fprintf(os.Stderr, "loom: %d motif groups, %d grouped vertices, largest group %d\n",
			st.MotifGroups, st.GroupedVertices, st.LargestGroup)
	case "multilevel":
		if *restreamPasses > 0 {
			return fmt.Errorf("-restream-passes applies to streaming partitioners, not multilevel")
		}
		ml := &partition.Multilevel{K: *k, Seed: *seed}
		if a, err = ml.Partition(g); err != nil {
			return err
		}
	default:
		newHeuristic := func() (partition.Streaming, error) {
			switch *part {
			case "ldg":
				return partition.NewLDG(cfg)
			case "fennel":
				return partition.NewFennel(partition.FennelConfig{Config: cfg, ExpectedEdges: g.NumEdges()})
			case "hash":
				return partition.NewHash(cfg)
			case "greedy":
				return partition.NewDeterministicGreedy(cfg)
			case "balanced":
				return partition.NewBalanced(cfg)
			case "chunking":
				return partition.NewChunking(cfg)
			}
			return nil, fmt.Errorf("unknown partitioner %q", *part)
		}
		vs, err := stream.VertexOrder(g, order, rng)
		if err != nil {
			return err
		}
		if *restreamPasses > 0 {
			rs := &partition.Restreamer{
				Config:  rcfg,
				NewPass: func(int) (partition.Streaming, error) { return newHeuristic() },
			}
			res, err := rs.Run(g, vs, nil)
			if err != nil {
				return err
			}
			printPassStats(res)
			a = res.Final
			break
		}
		s, err := newHeuristic()
		if err != nil {
			return err
		}
		a = partition.PartitionStream(g, vs, s)
	}

	q := metrics.Evaluate(*part, g, a)
	fmt.Fprintln(os.Stderr, q)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return writeAssignment(w, a)
}

// partitionFromFile streams a graph file straight into LOOM element by
// element (stream.FromReader), so partitioning starts before the file has
// been fully read and no materialised graph gates the pipeline. The graph
// is accumulated on the side only for the final quality report. The file
// must be in stream layout (`loom generate -layout stream`) for vertices
// to arrive with their adjacency; sorted-layout files still work but feed
// every edge after all vertices, which starves the window.
func partitionFromFile(graphPath, workloadFile string, workloadN, labelsN, expected int, ccfg core.Config, seed int64, outPath string) error {
	if expected == 0 {
		f, err := os.Open(graphPath)
		if err != nil {
			return err
		}
		src := stream.FromReader(bufio.NewReader(f))
		for {
			el, ok := src.Next()
			if !ok {
				break
			}
			if el.Kind == stream.VertexElement {
				expected++
			}
		}
		f.Close()
		if err := src.Err(); err != nil {
			return err
		}
		if expected == 0 {
			return fmt.Errorf("graph file %s holds no vertices", graphPath)
		}
		fmt.Fprintf(os.Stderr, "loom: prescan found %d vertices\n", expected)
	}
	ccfg.Partition.ExpectedVertices = expected

	alphabet := gen.DefaultAlphabet(labelsN)
	w, err := loadWorkload(workloadFile, workloadN, alphabet, seed)
	if err != nil {
		return err
	}
	trie := motif.New(signature.NewFactoryForAlphabet(alphabet), motif.Options{MaxMotifVertices: 4})
	if w != nil {
		if err := w.BuildTrie(trie); err != nil {
			return err
		}
	}
	p, err := core.New(ccfg, trie)
	if err != nil {
		return err
	}

	f, err := os.Open(graphPath)
	if err != nil {
		return err
	}
	defer f.Close()
	src := stream.FromReader(bufio.NewReader(f))
	g := graph.New() // metrics-only shadow; the partitioner consumes elements directly
	for {
		el, ok := src.Next()
		if !ok {
			break
		}
		switch el.Kind {
		case stream.VertexElement:
			// AddVertex silently relabels duplicates; reject them like
			// every other ingest path (graph.Read, serve) does.
			if g.HasVertex(el.V) {
				return fmt.Errorf("duplicate vertex %d in %s", el.V, graphPath)
			}
			g.AddVertex(el.V, el.Label)
		case stream.EdgeElement:
			if err := g.AddEdge(el.V, el.U); err != nil {
				return err
			}
		}
		if err := p.Consume(el); err != nil {
			return err
		}
	}
	if err := src.Err(); err != nil {
		return err
	}
	a := p.Finish()
	st := p.Stats()
	fmt.Fprintf(os.Stderr, "loom: %d motif groups, %d grouped vertices, largest group %d\n",
		st.MotifGroups, st.GroupedVertices, st.LargestGroup)
	fmt.Fprintln(os.Stderr, metrics.Evaluate("loom", g, a))

	out := os.Stdout
	if outPath != "" {
		fo, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer fo.Close()
		out = fo
	}
	return writeAssignment(out, a)
}

// printPassStats reports per-pass restreaming measures on stderr.
func printPassStats(res *partition.RestreamResult) {
	for _, st := range res.Passes {
		fmt.Fprintf(os.Stderr, "restream: pass %d (%s) cut=%d cut%%=%.2f balance=%.3f migrated=%d (%.1f%%)\n",
			st.Pass, st.Priority, st.CutEdges, 100*st.CutFraction, st.Imbalance,
			st.Migrated, 100*st.MigrationFraction)
	}
}

// writeAssignment serialises the assignment text codec
// (partition.WriteAssignment).
func writeAssignment(w io.Writer, a *partition.Assignment) error {
	return partition.WriteAssignment(w, a)
}

// readAssignment parses the assignment text codec from a file.
func readAssignment(path string) (*partition.Assignment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return partition.ReadAssignment(bufio.NewReader(f))
}

func cmdEvaluate(args []string) error {
	fs := flag.NewFlagSet("evaluate", flag.ExitOnError)
	graphPath := fs.String("graph", "", "graph file (required)")
	assignPath := fs.String("assign", "", "assignment file (required)")
	workloadN := fs.Int("workload", 16, "synthetic workload size (0 = structural metrics only)")
	samples := fs.Int("samples", 0, "sampled executions (0 = exhaustive weighted run)")
	seed := fs.Int64("seed", 1, "random seed")
	useStore := fs.Bool("store", false, "deploy the sharded store and count cross-shard messages for the workload's queries")
	replicas := fs.Int("replicas", 0, "replication budget for the hotspot advisor (with -store)")
	matchLimit := fs.Int("match-limit", 200, "per-query match cap for -store traversals (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" || *assignPath == "" {
		return fmt.Errorf("-graph and -assign are required")
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	a, err := readAssignment(*assignPath)
	if err != nil {
		return err
	}
	fmt.Println(metrics.Evaluate("assignment", g, a))
	if *workloadN == 0 {
		if *useStore {
			return evalStore(g, a, nil, *replicas, *matchLimit)
		}
		return nil
	}
	w, err := makeWorkload(g, *workloadN, *seed)
	if err != nil {
		return err
	}
	if *useStore {
		return evalStore(g, a, w, *replicas, *matchLimit)
	}
	c, err := cluster.New(g, a, cluster.DefaultCostModel())
	if err != nil {
		return err
	}
	var res cluster.WorkloadResult
	if *samples > 0 {
		res = c.RunWorkload(w, *samples, rand.New(rand.NewSource(*seed)))
	} else {
		res = c.RunWorkloadExhaustive(w)
	}
	fmt.Printf("workload: queries=%d executions=%d matches=%d\n", w.Len(), res.Executions, res.Aggregate.Matches)
	fmt.Printf("traversal probability: %.4f\n", res.TraversalProbability())
	fmt.Printf("match-edge cut fraction: %.4f\n", res.MatchCutFraction())
	fmt.Printf("visits: %d (cross: %d)\n", res.Aggregate.Visits, res.Aggregate.CrossVisits)
	return nil
}

// evalStore deploys the sharded store (internal/store) under the
// assignment, replays the workload's queries through the traversal
// engine, and reports cross-shard messages before and after the hotspot
// replication advisor spends its budget — the deployment-level measure
// the structural cut only approximates.
func evalStore(g *graph.Graph, a *partition.Assignment, w *query.Workload, replicas, matchLimit int) error {
	st, err := store.Build(g, a)
	if err != nil {
		return err
	}
	fmt.Printf("store: shards=%d cut-edges=%d\n", st.NumShards(), st.CutEdges())
	for i := 0; i < st.NumShards(); i++ {
		sh := st.Shard(partition.ID(i))
		fmt.Printf("store: shard %d vertices=%d\n", i, sh.NumVertices())
	}
	if w == nil {
		return nil
	}

	// Path-shaped queries take the cheaper linear traversal; everything
	// else (cycles, stars, arbitrary graph forms) goes through the general
	// pattern matcher. Both run on the same engine and cost model, which
	// is also exactly what the online /query endpoint executes — the
	// serve-side parity test pins the two bit-identical.
	type storedQuery struct {
		id      string
		labels  []graph.Label // path fast-path when non-nil
		pattern *graph.Graph
	}
	var queries []storedQuery
	pathN := 0
	for _, q := range w.Queries() {
		sq := storedQuery{id: q.ID, pattern: q.Pattern}
		if labels, ok := query.PathLabels(q.Pattern); ok {
			sq.labels = labels
			pathN++
		}
		queries = append(queries, sq)
	}

	run := func(eng *store.Engine) (int, store.Stats, error) {
		matches := 0
		for _, sq := range queries {
			var n int
			var err error
			if sq.labels != nil {
				n, err = eng.MatchPath(sq.labels, matchLimit)
			} else {
				n, err = eng.MatchPattern(sq.pattern, matchLimit)
			}
			if err != nil {
				return 0, store.Stats{}, fmt.Errorf("query %s: %w", sq.id, err)
			}
			matches += n
		}
		return matches, eng.Stats(), nil
	}

	advisor := store.NewAdvisor(st)
	matches, before, err := run(store.NewInstrumentedEngine(st, advisor))
	if err != nil {
		return err
	}
	fmt.Printf("store: queries=%d (paths=%d patterns=%d) matches=%d\n",
		len(queries), pathN, len(queries)-pathN, matches)
	fmt.Printf("store: messages=%d (local=%d remote=%d)\n", before.Messages, before.LocalReads, before.RemoteReads)
	if replicas <= 0 {
		return nil
	}

	placed := advisor.Apply(replicas)
	fmt.Printf("store: replicas placed=%d (budget %d, hotspots observed %d)\n",
		placed, replicas, len(advisor.Hotspots()))
	_, after, err := run(store.NewEngine(st))
	if err != nil {
		return err
	}
	delta := 0.0
	if before.Messages > 0 {
		delta = 100 * float64(after.Messages-before.Messages) / float64(before.Messages)
	}
	fmt.Printf("store: messages after replication=%d (%+.1f%%, replica reads=%d)\n",
		after.Messages, delta, after.ReplicaReads)
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	workloadN := fs.Int("workload", 16, "synthetic workload size (0 = Figure 1 workload)")
	labels := fs.Int("labels", 4, "label alphabet size")
	threshold := fs.Float64("threshold", 0.1, "frequency threshold T")
	seed := fs.Int64("seed", 1, "random seed")
	dot := fs.String("dot", "", "write the TPSTry++ as Graphviz DOT to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	alphabet := gen.DefaultAlphabet(*labels)
	var w *query.Workload
	var err error
	if *workloadN == 0 {
		w = query.Fig1Workload()
	} else {
		w, err = query.GenerateWorkload(query.DefaultMix(*workloadN), alphabet, rand.New(rand.NewSource(*seed)))
		if err != nil {
			return err
		}
	}
	trie := motif.New(signature.NewFactoryForAlphabet(alphabet), motif.Options{MaxMotifVertices: 4})
	if err := w.BuildTrie(trie); err != nil {
		return err
	}
	fmt.Printf("workload: %d queries, total weight %.2f\n", w.Len(), w.TotalWeight())
	fmt.Printf("TPSTry++: %d motif nodes, %d roots\n", trie.NumNodes(), len(trie.Roots()))
	freq := trie.FrequentMotifs(*threshold)
	fmt.Printf("frequent motifs at T=%.2f: %d\n", *threshold, len(freq))
	for _, n := range freq {
		fmt.Printf("  p=%.3f |V|=%d |E|=%d %s\n", trie.P(n), n.NumVertices(), n.NumEdges(), n.Rep)
	}
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := motif.WriteDOT(f, trie, *threshold); err != nil {
			return err
		}
		fmt.Printf("wrote DOT to %s\n", *dot)
	}
	return nil
}
