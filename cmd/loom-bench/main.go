// Command loom-bench regenerates every table of EXPERIMENTS.md: the
// paper's figures (F1–F3), its claims (C1–C3) and the future-work
// evaluation (E1–E11).
//
// Usage:
//
//	loom-bench                        # run everything at full size
//	loom-bench -quick                 # run everything at reduced size (seconds)
//	loom-bench -run C2,E9             # run selected experiments
//	loom-bench -list                  # list experiment IDs
//	loom-bench -seed 7                # change the global seed
//	loom-bench -json BENCH_loom.json  # write the benchmark trajectory
//	                                  # (ns/vertex, allocs/vertex, cut fraction,
//	                                  # imbalance per scenario) and exit;
//	                                  # combine with -quick
//	loom-bench -chaos 50              # run 50 seeded fault-injection
//	                                  # schedules against the durable server
//	                                  # (internal/fault/chaos) and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"loom/internal/experiments"
	"loom/internal/fault/chaos"
)

func main() {
	quick := flag.Bool("quick", false, "reduced instance sizes (seconds instead of minutes)")
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	seed := flag.Int64("seed", 42, "global random seed")
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned text")
	jsonOut := flag.String("json", "", "write the benchmark trajectory to this file (e.g. BENCH_loom.json) and exit")
	baseline := flag.String("baseline", "", "with -json: compare against this committed trajectory and fail on regression (may be the same file; it is read first)")
	tolerance := flag.Float64("tolerance", 0.20, "with -baseline: allowed relative regression before failing")
	chaosSeeds := flag.Int("chaos", 0, "run this many seeded chaos fault-injection schedules and exit")
	flag.Parse()

	if *chaosSeeds > 0 {
		if err := runChaos(*seed, *chaosSeeds); err != nil {
			fmt.Fprintf(os.Stderr, "loom-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, s := range experiments.All() {
			fmt.Printf("%-4s %s\n", s.ID, s.Title)
		}
		return
	}

	if *jsonOut != "" {
		// The baseline is read before the new trajectory overwrites it, so
		// `-json BENCH_loom.json -baseline BENCH_loom.json` compares against
		// the committed numbers and leaves the fresh ones in place.
		var base []experiments.BenchRecord
		if *baseline != "" {
			var err error
			if base, err = readBenchJSON(*baseline); err != nil {
				fmt.Fprintf(os.Stderr, "loom-bench: baseline: %v\n", err)
				os.Exit(1)
			}
		}
		records, err := writeBenchJSON(*jsonOut, *seed, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loom-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("loom-bench: wrote benchmark trajectory to %s\n", *jsonOut)
		if *baseline != "" {
			regressions := experiments.CompareBaseline(records, base, *tolerance)
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "loom-bench: REGRESSION: %s\n", r)
			}
			if len(regressions) > 0 {
				os.Exit(1)
			}
			fmt.Printf("loom-bench: no regressions beyond %.0f%% against %s\n", *tolerance*100, *baseline)
		}
		return
	}

	selected := experiments.All()
	if *run != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*run, ",") {
			spec, ok := experiments.Lookup(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "loom-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, spec)
		}
	}

	r := &experiments.Runner{Seed: *seed, Quick: *quick, Out: os.Stderr}
	mode := "full"
	if *quick {
		mode = "quick"
	}
	if !*csvOut {
		fmt.Printf("loom-bench: %d experiment(s), %s mode, seed %d\n\n", len(selected), mode, *seed)
	}

	failed := 0
	for _, spec := range selected {
		start := time.Now()
		tab, err := spec.Run(r)
		elapsed := time.Since(start).Round(time.Millisecond)
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "loom-bench: %s FAILED after %v: %v\n", spec.ID, elapsed, err)
			continue
		}
		if *csvOut {
			fmt.Printf("## %s\n", spec.ID)
			if err := tab.RenderCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "loom-bench: render %s: %v\n", spec.ID, err)
				os.Exit(1)
			}
			fmt.Println()
			continue
		}
		if err := tab.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "loom-bench: render %s: %v\n", spec.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", spec.ID, elapsed)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "loom-bench: %d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}

// runChaos drives n seeded fault-injection schedules (base seed onward)
// through the chaos harness and reports per-seed and aggregate activity;
// any durability violation fails the run with its seed, so it can be
// replayed with `-chaos 1 -seed <s>`.
func runChaos(base int64, n int) error {
	scratch, err := os.MkdirTemp("", "loom-chaos-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)
	fmt.Printf("loom-bench: chaos, %d schedule(s), seeds %d..%d\n", n, base, base+int64(n)-1)
	var total chaos.Report
	start := time.Now()
	for i := 0; i < n; i++ {
		s := base + int64(i)
		rep, err := chaos.Run(s, chaos.Options{Scratch: scratch})
		if err != nil {
			return fmt.Errorf("seed %d: %w (replay: loom-bench -chaos 1 -seed %d)", s, err, s)
		}
		fmt.Printf("  seed %-6d k=%d ops=%-4d injections=%-3d crashes=%-2d reanchors=%-2d restreams=%-2d unacked=%d\n",
			rep.Seed, rep.K, rep.Ops, rep.Injections, rep.Crashes, rep.Reanchors, rep.Restreams, rep.Unacked)
		total.Ops += rep.Ops
		total.Injections += rep.Injections
		total.Crashes += rep.Crashes
		total.Reanchors += rep.Reanchors
		total.Restreams += rep.Restreams
		total.Unacked += rep.Unacked
	}
	fmt.Printf("loom-bench: chaos PASS in %v: ops=%d injections=%d crashes=%d reanchors=%d restreams=%d unacked=%d — survivor matched fault-free control on every seed\n",
		time.Since(start).Round(time.Millisecond), total.Ops, total.Injections, total.Crashes, total.Reanchors, total.Restreams, total.Unacked)
	return nil
}

// writeBenchJSON measures the benchmark trajectory and writes it as JSON,
// so successive PRs can diff ns/vertex, allocs/vertex, cut fraction and
// imbalance per scenario.
func writeBenchJSON(path string, seed int64, quick bool) ([]experiments.BenchRecord, error) {
	records, err := experiments.BenchTrajectory(seed, quick)
	if err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := experiments.WriteBenchJSON(f, records); err != nil {
		f.Close()
		return nil, err
	}
	return records, f.Close()
}

// readBenchJSON loads a committed benchmark trajectory.
func readBenchJSON(path string) ([]experiments.BenchRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return experiments.ReadBenchJSON(f)
}
