package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"loom/internal/experiments"
)

// TestWriteBenchJSON runs the bench trajectory on a tiny instance and
// checks the emitted file parses back with sane records.
func TestWriteBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_loom.json")
	if _, err := writeBenchJSON(path, 42, true); err != nil {
		t.Fatalf("writeBenchJSON: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var records []experiments.BenchRecord
	if err := json.Unmarshal(data, &records); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(records) == 0 {
		t.Fatal("no bench records emitted")
	}
	seen := map[string]bool{}
	for _, r := range records {
		if r.Scenario == "" || r.Vertices == 0 || r.K == 0 {
			t.Errorf("incomplete record %+v", r)
		}
		if r.CutFraction < 0 || r.CutFraction > 1 {
			t.Errorf("%s: cut fraction %v out of [0,1]", r.Scenario, r.CutFraction)
		}
		if r.Imbalance < 1 {
			t.Errorf("%s: imbalance %v below 1", r.Scenario, r.Imbalance)
		}
		if seen[r.Scenario] {
			t.Errorf("duplicate scenario %q", r.Scenario)
		}
		seen[r.Scenario] = true
	}
	// The restreamed scenario must exist and not cut more than single-pass
	// LDG on the same graph and order.
	byName := map[string]experiments.BenchRecord{}
	for _, r := range records {
		byName[r.Scenario] = r
	}
	ldg, okL := byName["community-1000/ldg"]
	re, okR := byName["community-1000/reldg-3pass"]
	if !okL || !okR {
		t.Fatalf("expected community ldg + reldg scenarios, have %v", seen)
	}
	if re.CutFraction > ldg.CutFraction {
		t.Errorf("reldg cut %.4f worse than ldg %.4f", re.CutFraction, ldg.CutFraction)
	}
}

// TestBenchExperimentSmoke drives the same Runner loom-bench uses over one
// cheap experiment, quick mode — the command's core path minus flag
// parsing.
func TestBenchExperimentSmoke(t *testing.T) {
	spec, ok := experiments.Lookup("E15")
	if !ok {
		t.Fatal("E15 not registered")
	}
	r := &experiments.Runner{Seed: 42, Quick: true}
	tab, err := spec.Run(r)
	if err != nil {
		t.Fatalf("E15 quick: %v", err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("E15 produced no rows")
	}
}
