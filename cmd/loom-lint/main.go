// Command loom-lint runs the repository's custom determinism and
// allocation analyzers (internal/lint) over the module:
//
//	go run ./cmd/loom-lint ./...          # whole module (CI invocation)
//	go run ./cmd/loom-lint internal/core  # one package directory
//	go run ./cmd/loom-lint -list          # describe the analyzers
//
// Diagnostics print as file:line:col: analyzer: message. The exit
// status is 1 when any diagnostic fired, 2 on a load/type-check
// failure, 0 on a clean run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"loom/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("loom-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "describe the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for n := range want {
			fmt.Fprintf(stderr, "loom-lint: unknown analyzer %q\n", n)
			return 2
		}
		analyzers = sel
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "loom-lint:", err)
		return 2
	}
	root, modPath, err := lint.FindModule(wd)
	if err != nil {
		fmt.Fprintln(stderr, "loom-lint:", err)
		return 2
	}
	loader := lint.NewLoader(root, modPath)

	paths, err := targetPackages(loader, fs.Args(), wd)
	if err != nil {
		fmt.Fprintln(stderr, "loom-lint:", err)
		return 2
	}

	exit := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(stderr, "loom-lint: %v\n", err)
			exit = 2
			continue
		}
		for _, d := range lint.Run(pkg, analyzers) {
			fmt.Fprintln(stdout, d)
			if exit == 0 {
				exit = 1
			}
		}
	}
	return exit
}

// targetPackages resolves command-line arguments to module import
// paths. "./..." (or no argument) means every package in the module;
// anything else is a directory relative to the working directory.
func targetPackages(loader *lint.Loader, args []string, wd string) ([]string, error) {
	if len(args) == 0 {
		return loader.ModulePackages()
	}
	var out []string
	for _, a := range args {
		if a == "./..." || a == "all" {
			return loader.ModulePackages()
		}
		dir := a
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(wd, dir)
		}
		rel, err := filepath.Rel(loader.ModRoot, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("package %q is outside module root %s", a, loader.ModRoot)
		}
		if rel == "." {
			out = append(out, loader.ModPath)
		} else {
			out = append(out, loader.ModPath+"/"+filepath.ToSlash(rel))
		}
	}
	return out, nil
}
