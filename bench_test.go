package loom_test

// Benchmark harness: one benchmark per experiment in EXPERIMENTS.md
// (figures F1–F3, claims C1–C3, evaluation E1–E14), each delegating to
// internal/experiments in quick mode, plus micro-benchmarks for the hot
// paths (signatures, isomorphism, windowing, placement, motif capture).
//
// Regenerate every table with:
//
//	go test -bench=. -benchmem ./...
//
// or print the full-size tables with cmd/loom-bench.

import (
	"fmt"
	"math/rand"
	"testing"

	"loom"
	"loom/internal/experiments"
	"loom/internal/gen"
	"loom/internal/graph"
	"loom/internal/iso"
	"loom/internal/motif"
	"loom/internal/partition"
	"loom/internal/pattern"
	"loom/internal/query"
	"loom/internal/signature"
	"loom/internal/store"
	"loom/internal/stream"
)

// benchExperiment runs one experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	spec, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	r := &experiments.Runner{Seed: 42, Quick: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spec.Run(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF1PatternMatch(b *testing.B)         { benchExperiment(b, "F1") }
func BenchmarkF2TPSTryBuild(b *testing.B)          { benchExperiment(b, "F2") }
func BenchmarkF3Reexpansion(b *testing.B)          { benchExperiment(b, "F3") }
func BenchmarkC1LDGvsHash(b *testing.B)            { benchExperiment(b, "C1") }
func BenchmarkC2TraversalProbability(b *testing.B) { benchExperiment(b, "C2") }
func BenchmarkC3Orderings(b *testing.B)            { benchExperiment(b, "C3") }
func BenchmarkE1WindowSweep(b *testing.B)          { benchExperiment(b, "E1") }
func BenchmarkE2ThresholdSweep(b *testing.B)       { benchExperiment(b, "E2") }
func BenchmarkE3Balance(b *testing.B)              { benchExperiment(b, "E3") }
func BenchmarkE4Throughput(b *testing.B)           { benchExperiment(b, "E4") }
func BenchmarkE5OfflineRef(b *testing.B)           { benchExperiment(b, "E5") }
func BenchmarkE6WorkloadSkew(b *testing.B)         { benchExperiment(b, "E6") }
func BenchmarkE7QueryMix(b *testing.B)             { benchExperiment(b, "E7") }
func BenchmarkE8SignatureFidelity(b *testing.B)    { benchExperiment(b, "E8") }
func BenchmarkE9AblationNoMotifs(b *testing.B)     { benchExperiment(b, "E9") }
func BenchmarkE10AblationVerify(b *testing.B)      { benchExperiment(b, "E10") }
func BenchmarkE11AblationCoassign(b *testing.B)    { benchExperiment(b, "E11") }
func BenchmarkE12WeightedLDG(b *testing.B)         { benchExperiment(b, "E12") }
func BenchmarkE13GroupSplit(b *testing.B)          { benchExperiment(b, "E13") }
func BenchmarkE14StoreMessages(b *testing.B)       { benchExperiment(b, "E14") }

// ---- micro-benchmarks ----

// BenchmarkSignatureIncremental measures the per-edge cost of maintaining a
// running signature (the matcher's hot path).
func BenchmarkSignatureIncremental(b *testing.B) {
	f := signature.NewFactoryForAlphabet(gen.DefaultAlphabet(8))
	pa := f.VertexFactor("a")
	pe := f.EdgeFactor("a", "b")
	s := signature.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MulPrime(pa)
		s.MulPrime(pe)
		s.DivPrime(pe)
		s.DivPrime(pa)
	}
}

// BenchmarkSignatureOfMotif measures whole-motif signature computation.
func BenchmarkSignatureOfMotif(b *testing.B) {
	f := signature.NewFactoryForAlphabet(gen.DefaultAlphabet(4))
	m := graph.Cycle("a", "b", "a", "b")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.SignatureOf(m)
	}
}

// BenchmarkSignatureKey measures canonical key rendering (trie lookups).
func BenchmarkSignatureKey(b *testing.B) {
	f := signature.NewFactoryForAlphabet(gen.DefaultAlphabet(4))
	s := f.SignatureOf(graph.Cycle("a", "b", "a", "b"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Key()
	}
}

// BenchmarkIsoSubgraphSearch measures exact pattern matching of a 3-path
// against a 1k-vertex BA graph (the simulated cluster's query engine).
func BenchmarkIsoSubgraphSearch(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	lab := &gen.UniformLabeler{Alphabet: gen.DefaultAlphabet(4), Rand: r}
	g, err := gen.BarabasiAlbert(1000, 2, lab, r)
	if err != nil {
		b.Fatal(err)
	}
	pat := graph.Path("a", "b", "c")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = iso.Count(pat, g)
	}
}

// BenchmarkTPSTryAddQuery measures Algorithm 1 on a 4-vertex query.
func BenchmarkTPSTryAddQuery(b *testing.B) {
	q := graph.Cycle("a", "b", "a", "b")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := motif.New(signature.NewFactoryForAlphabet(gen.DefaultAlphabet(4)), motif.Options{MaxMotifVertices: 4})
		if err := tr.AddQuery("q", q, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWindowChurn measures window add/evict throughput.
func BenchmarkWindowChurn(b *testing.B) {
	w, err := stream.NewWindow(256)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.AddVertex(graph.VertexID(i), "a")
		if i > 0 {
			_, _ = w.AddEdge(graph.VertexID(i), graph.VertexID(i-1))
		}
	}
}

// BenchmarkLDGPlace measures single-vertex LDG placement.
func BenchmarkLDGPlace(b *testing.B) {
	ldg, err := partition.NewLDG(partition.Config{K: 16, ExpectedVertices: 1 << 30, Slack: 1.1})
	if err != nil {
		b.Fatal(err)
	}
	neighbors := []graph.VertexID{1, 2, 3, 4}
	for i, v := range neighbors {
		if err := ldg.Assignment().Set(v, partition.ID(i%16)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ldg.Place(graph.VertexID(i+100), neighbors)
	}
}

// BenchmarkTrackerObserveEdge measures motif tracking per stream edge on a
// window-resident chain.
func BenchmarkTrackerObserveEdge(b *testing.B) {
	trie := motif.New(signature.NewFactoryForAlphabet(gen.DefaultAlphabet(4)), motif.Options{MaxMotifVertices: 4})
	if err := query.Fig1Workload().BuildTrie(trie); err != nil {
		b.Fatal(err)
	}
	labels := []graph.Label{"a", "b", "c", "d"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tk := pattern.NewTracker(trie, pattern.Options{Threshold: 0.3})
		w := graph.New()
		for j := 0; j < 8; j++ {
			w.AddVertex(graph.VertexID(j), labels[j%4])
			if j > 0 {
				if err := w.AddEdge(graph.VertexID(j-1), graph.VertexID(j)); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StartTimer()
		for j := 1; j < 8; j++ {
			if err := tk.ObserveEdge(graph.VertexID(j-1), graph.VertexID(j), w); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkLoomEndToEnd measures full LOOM partitioning of a 2k-vertex BA
// stream, the number a deployment planner would care about.
func BenchmarkLoomEndToEnd(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	alphabet := gen.DefaultAlphabet(4)
	lab := &gen.UniformLabeler{Alphabet: alphabet, Rand: r}
	g, err := gen.BarabasiAlbert(2000, 2, lab, r)
	if err != nil {
		b.Fatal(err)
	}
	w, err := query.GenerateWorkload(query.DefaultMix(12), alphabet, r)
	if err != nil {
		b.Fatal(err)
	}
	trie, err := loom.CaptureWorkload(w, loom.CaptureOptions{Alphabet: alphabet})
	if err != nil {
		b.Fatal(err)
	}
	elems, err := stream.FromGraph(g, stream.TemporalOrder, nil)
	if err != nil {
		b.Fatal(err)
	}
	cfg := loom.Config{
		Partition:  loom.PartitionConfig{K: 8, ExpectedVertices: 2000, Slack: 1.2, Seed: 1},
		WindowSize: 256,
		Threshold:  0.05,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := loom.New(cfg, trie)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Run(stream.NewSliceSource(elems)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultilevelPartition measures the offline reference on a 2k
// community graph.
func BenchmarkMultilevelPartition(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	lab := &gen.UniformLabeler{Alphabet: gen.DefaultAlphabet(4), Rand: r}
	g, err := gen.PlantedPartition(2000, 8, 0.16, 0.005, lab, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ml := &partition.Multilevel{K: 8, Seed: int64(i)}
		if _, err := ml.Partition(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamingPartitioners compares single-vertex placement cost of
// every streaming heuristic at several k (the per-element cost model of
// §3.1's scalability argument).
func BenchmarkStreamingPartitioners(b *testing.B) {
	neighbors := []graph.VertexID{1, 2, 3, 4, 5, 6, 7, 8}
	for _, k := range []int{4, 16, 64} {
		cfg := partition.Config{K: k, ExpectedVertices: 1 << 30, Slack: 1.1, Seed: 1}
		mk := map[string]func() (partition.Streaming, error){
			"hash": func() (partition.Streaming, error) { return partition.NewHash(cfg) },
			"ldg":  func() (partition.Streaming, error) { return partition.NewLDG(cfg) },
			"fennel": func() (partition.Streaming, error) {
				return partition.NewFennel(partition.FennelConfig{Config: cfg, ExpectedEdges: 1 << 31})
			},
		}
		for _, name := range []string{"hash", "ldg", "fennel"} {
			s, err := mk[name]()
			if err != nil {
				b.Fatal(err)
			}
			for i, v := range neighbors {
				if err := s.Assignment().Set(v, partition.ID(i%k)); err != nil {
					b.Fatal(err)
				}
			}
			b.Run(fmt.Sprintf("%s/k=%d", name, k), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					s.Place(graph.VertexID(i+100), neighbors)
				}
			})
		}
	}
}

// BenchmarkIsoByGraphSize measures pattern-match scaling with target size.
func BenchmarkIsoByGraphSize(b *testing.B) {
	pat := graph.Path("a", "b", "c")
	for _, n := range []int{500, 2000, 8000} {
		r := rand.New(rand.NewSource(1))
		lab := &gen.UniformLabeler{Alphabet: gen.DefaultAlphabet(4), Rand: r}
		g, err := gen.BarabasiAlbert(n, 2, lab, r)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = iso.Count(pat, g)
			}
		})
	}
}

// BenchmarkStoreKHop measures sharded k-hop expansion cost by radius.
func BenchmarkStoreKHop(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	lab := &gen.UniformLabeler{Alphabet: gen.DefaultAlphabet(4), Rand: r}
	g, err := gen.BarabasiAlbert(4000, 2, lab, r)
	if err != nil {
		b.Fatal(err)
	}
	hash, err := partition.NewHash(partition.Config{K: 8, ExpectedVertices: 4000})
	if err != nil {
		b.Fatal(err)
	}
	a := partition.PartitionStream(g, g.Vertices(), hash)
	st, err := store.Build(g, a)
	if err != nil {
		b.Fatal(err)
	}
	for _, hops := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("hops=%d", hops), func(b *testing.B) {
			b.ReportAllocs()
			e := store.NewEngine(st)
			for i := 0; i < b.N; i++ {
				if _, err := e.KHop(graph.VertexID(i%4000), hops); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
