// Social network example: workload-aware partitioning of a power-law
// friendship graph.
//
// The scenario the paper's introduction motivates: a social graph grows as
// a stream (users sign up, friendships form), while the application runs a
// skewed mix of pattern queries — friend-of-friend lookups, triangle
// closures for recommendations, short label-constrained paths. The example
// partitions the same stream with hash, Fennel, LDG and LOOM and compares
// the probability that query execution crosses partition boundaries.
//
// Run with:
//
//	go run ./examples/social
package main

import (
	"fmt"
	"log"
	"math/rand"

	"loom"
)

func main() {
	const (
		users = 4000
		k     = 8
		seed  = 11
	)
	// Labels model user types: "c"onsumer, "b"usiness, "a"dmin/influencer,
	// "d"ormant.
	alphabet := loom.DefaultAlphabet(4)
	g, err := loom.BarabasiAlbertGraph(users, 2, alphabet, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social graph: %d users, %d friendships (max degree %d)\n\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree())

	// The application's query mix, Zipf-skewed: a few hot query shapes
	// dominate traffic (the skew LOOM exploits).
	workload, err := loom.DefaultWorkload(24, alphabet, 1.0, seed)
	if err != nil {
		log.Fatal(err)
	}
	trie, err := loom.CaptureWorkload(workload, loom.CaptureOptions{Alphabet: alphabet})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d queries -> TPSTry++ with %d motifs (%d frequent at T=0.05)\n\n",
		workload.Len(), trie.NumNodes(), len(trie.FrequentMotifs(0.05)))

	pcfg := loom.PartitionConfig{K: k, ExpectedVertices: users, Slack: 1.2, Seed: seed}

	assignments := map[string]*loom.Assignment{}
	var err2 error
	if assignments["hash"], err2 = loom.PartitionWithHash(g, pcfg); err2 != nil {
		log.Fatal(err2)
	}
	if assignments["fennel"], err2 = loom.PartitionWithFennel(g, loom.RandomOrder, rand.New(rand.NewSource(seed)), pcfg); err2 != nil {
		log.Fatal(err2)
	}
	if assignments["ldg"], err2 = loom.PartitionWithLDG(g, loom.RandomOrder, rand.New(rand.NewSource(seed)), pcfg); err2 != nil {
		log.Fatal(err2)
	}
	cfg := loom.Config{Partition: pcfg, WindowSize: 256, Threshold: 0.05}
	if assignments["loom"], err2 = loom.PartitionGraph(g, loom.RandomOrder, rand.New(rand.NewSource(seed)), cfg, trie); err2 != nil {
		log.Fatal(err2)
	}

	fmt.Printf("%-8s %-12s %-12s %-12s %-10s\n", "method", "trav-prob", "match-cut", "edge-cut", "balance")
	for _, name := range []string{"hash", "fennel", "ldg", "loom"} {
		a := assignments[name]
		c, err := loom.NewCluster(g, a, loom.DefaultCostModel())
		if err != nil {
			log.Fatal(err)
		}
		res := c.RunWorkloadExhaustive(workload)
		fmt.Printf("%-8s %-12.4f %-12.4f %-12.4f %-10.3f\n",
			name,
			res.TraversalProbability(),
			res.MatchCutFraction(),
			loom.CutFraction(g, a),
			loom.VertexImbalance(a))
	}
	fmt.Println("\nlower traversal probability = fewer network hops per query;")
	fmt.Println("LOOM trades a little edge-cut for keeping hot motifs partition-local")
}
