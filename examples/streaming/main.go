// Streaming example: partitioning a live, growing graph.
//
// This is the setting the paper actually targets (§3.1): the graph is not
// static — it arrives as a stochastic stream of vertices and edges, like a
// social network growing under user input. The example drives a LOOM
// partitioner element by element, printing periodic progress: window
// occupancy, motif matches being tracked, groups assigned, and the running
// cut fraction. At the end it compares the online result with what plain
// LDG would have produced on the identical stream.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand"

	"loom"
)

func main() {
	const (
		vertices = 5000
		k        = 8
		seed     = 47
	)
	alphabet := loom.DefaultAlphabet(4)

	workload, err := loom.DefaultWorkload(16, alphabet, 0.8, seed)
	if err != nil {
		log.Fatal(err)
	}
	trie, err := loom.CaptureWorkload(workload, loom.CaptureOptions{Alphabet: alphabet})
	if err != nil {
		log.Fatal(err)
	}

	cfg := loom.Config{
		Partition:  loom.PartitionConfig{K: k, ExpectedVertices: vertices, Slack: 1.2, Seed: seed},
		WindowSize: 256,
		Threshold:  0.05,
		// Live streams can chain overlapping matches into very large
		// groups; cap them (the paper's future-work local split) so one
		// closure cannot flood a partition.
		MaxGroupSize: 32,
	}
	p, err := loom.New(cfg, trie)
	if err != nil {
		log.Fatal(err)
	}

	// The stream is generated live by a preferential-attachment process —
	// no materialised graph exists before partitioning begins. The graph g
	// is rebuilt alongside only so the final placement can be evaluated.
	src, err := loom.NewLiveSource(vertices, 2, alphabet, seed)
	if err != nil {
		log.Fatal(err)
	}
	g := loom.NewGraph()

	fmt.Printf("streaming a live preferential-attachment graph of %d vertices into %d partitions\n\n",
		vertices, k)
	fmt.Printf("%-10s %-9s %-9s %-13s %-13s\n",
		"element", "window", "assigned", "motif-groups", "grouped-vxs")

	checkpoint := vertices * 3 / 8 // elements ≈ 3n for mPer=2
	i := 0
	for {
		el, ok := src.Next()
		if !ok {
			break
		}
		switch el.Kind {
		case loom.VertexElement:
			g.AddVertex(el.V, el.Label)
		case loom.EdgeElement:
			if err := g.AddEdge(el.V, el.U); err != nil {
				log.Fatal(err)
			}
		}
		if err := p.Consume(el); err != nil {
			log.Fatalf("element %d: %v", i, err)
		}
		i++
		if i%checkpoint == 0 {
			st := p.Stats()
			fmt.Printf("%-10d %-9d %-9d %-13d %-13d\n",
				i, p.Window().Len(), st.VerticesAssigned, st.MotifGroups, st.GroupedVertices)
		}
	}
	assignment := p.Finish()
	st := p.Stats()
	fmt.Printf("\nstream drained: %d vertices assigned, %d motif groups (largest %d), %d re-expansions\n",
		st.VerticesAssigned, st.MotifGroups, st.LargestGroup, st.Tracker.Reexpansions)

	// The same (now fully revealed) graph through plain LDG for comparison.
	ldgA, err := loom.PartitionWithLDG(g, loom.TemporalOrder, rand.New(rand.NewSource(seed)),
		cfg.Partition)
	if err != nil {
		log.Fatal(err)
	}
	for _, entry := range []struct {
		name string
		a    *loom.Assignment
	}{{"loom", assignment}, {"ldg", ldgA}} {
		c, err := loom.NewCluster(g, entry.a, loom.DefaultCostModel())
		if err != nil {
			log.Fatal(err)
		}
		res := c.RunWorkloadExhaustive(workload)
		fmt.Printf("%-5s cut=%.3f balance=%.3f traversal-prob=%.4f\n",
			entry.name, loom.CutFraction(g, entry.a), loom.VertexImbalance(entry.a), res.TraversalProbability())
	}

	// If growth later drifts the balance, a bounded incremental rebalance
	// repairs it without full repartitioning.
	reb := loom.Rebalance(g, assignment, 1.05, 200)
	fmt.Printf("incremental rebalance: %v\n", reb)
}
