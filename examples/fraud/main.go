// Fraud detection example: keeping transaction rings partition-local.
//
// Fraud detection (paper §1, citing Tong et al.) hunts for small cyclic
// money-movement patterns — an account pays a mule, the mule pays a shell,
// the shell pays the account back. Those cycle queries run continuously
// over a growing transaction graph. This example builds a community-
// structured account graph, defines a cycle-heavy detection workload, and
// shows how LOOM's motif placement cuts the simulated per-query latency
// versus workload-agnostic LDG: crossing a partition costs a network round
// trip (100µs) while a local hop costs 1µs.
//
// Run with:
//
//	go run ./examples/fraud
package main

import (
	"fmt"
	"log"
	"math/rand"

	"loom"
)

func main() {
	const (
		accounts = 3000
		k        = 6
		seed     = 23
	)
	// Labels model account kinds: "a" retail, "b" business, "c" high-risk
	// corridor, "d" dormant. Transaction graphs are sparse with a few
	// high-degree hubs (exchanges, payment processors), so the power-law
	// generator fits.
	alphabet := loom.DefaultAlphabet(4)
	g, err := loom.BarabasiAlbertGraph(accounts, 2, alphabet, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transaction graph: %d accounts, %d edges\n\n", g.NumVertices(), g.NumEdges())

	// Detection rules: ring patterns (cycles) dominate, with a few path
	// probes. Weights reflect how often each rule fires.
	rules := []loom.Query{
		{ID: "ring3-retail", Pattern: loom.CycleQuery("a", "b", "c"), Weight: 5},
		{ID: "ring3-corridor", Pattern: loom.CycleQuery("c", "c", "b"), Weight: 4},
		{ID: "ring4", Pattern: loom.CycleQuery("a", "b", "a", "b"), Weight: 3},
		{ID: "probe-chain", Pattern: loom.PathQuery("a", "b", "c"), Weight: 2},
		{ID: "probe-corridor", Pattern: loom.PathQuery("c", "b", "c"), Weight: 2},
		{ID: "fanout", Pattern: loom.StarQuery("b", "a", "a", "c"), Weight: 1},
	}
	workload, err := loom.NewWorkload(rules...)
	if err != nil {
		log.Fatal(err)
	}
	trie, err := loom.CaptureWorkload(workload, loom.CaptureOptions{Alphabet: alphabet})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detection rules: %d, TPSTry++ motifs: %d\n", workload.Len(), trie.NumNodes())
	fmt.Println("hot motifs at T=0.25:")
	for _, m := range trie.FrequentMotifs(0.25) {
		fmt.Printf("  p=%.2f %s\n", trie.P(m), m.Rep)
	}
	fmt.Println()

	pcfg := loom.PartitionConfig{K: k, ExpectedVertices: accounts, Slack: 1.2, Seed: seed}

	ldgA, err := loom.PartitionWithLDG(g, loom.RandomOrder, rand.New(rand.NewSource(seed)), pcfg)
	if err != nil {
		log.Fatal(err)
	}
	loomA, err := loom.PartitionGraph(g, loom.RandomOrder, rand.New(rand.NewSource(seed)),
		loom.Config{Partition: pcfg, WindowSize: 256, Threshold: 0.1}, trie)
	if err != nil {
		log.Fatal(err)
	}

	costs := loom.DefaultCostModel() // 1µs local hop, 100µs cross-partition
	for _, entry := range []struct {
		name string
		a    *loom.Assignment
	}{{"ldg", ldgA}, {"loom", loomA}} {
		c, err := loom.NewCluster(g, entry.a, costs)
		if err != nil {
			log.Fatal(err)
		}
		res := c.RunWorkloadExhaustive(workload)
		perQuery := res.Aggregate.Latency / 6 // 6 rules, one exhaustive run each
		fmt.Printf("%-5s traversal-prob=%.4f  simulated latency/rule=%v  matches=%d\n",
			entry.name, res.TraversalProbability(), perQuery, res.Aggregate.Matches)
	}
	fmt.Println("\nthe latency gap is the cost of rings straddling partitions")
}
