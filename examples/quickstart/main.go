// Quickstart: partition the paper's Figure 1 example with LOOM.
//
// The program builds the example graph G and workload Q from Figure 1,
// captures Q into a TPSTry++, streams G through LOOM, and shows that the
// a-b-a-b square — the sub-graph every q1 execution traverses — lands on a
// single partition, while the placement stays balanced.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"loom"
)

func main() {
	// The data graph and query workload of the paper's Figure 1.
	g := loom.Fig1Graph()
	workload := loom.Fig1Workload()
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("workload: %d pattern queries\n\n", workload.Len())

	// Step 1: summarise the workload into a TPSTry++ (Algorithm 1).
	trie, err := loom.CaptureWorkload(workload, loom.CaptureOptions{
		Alphabet: loom.DefaultAlphabet(4),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TPSTry++: %d motifs", trie.NumNodes())
	frequent := trie.FrequentMotifs(0.3)
	fmt.Printf(", %d frequent at T=0.3:\n", len(frequent))
	for _, m := range frequent {
		fmt.Printf("  p=%.2f  %s\n", trie.P(m), m.Rep)
	}
	fmt.Println()

	// Step 2: partition the graph-stream with LOOM.
	cfg := loom.Config{
		Partition: loom.PartitionConfig{
			K:                2,
			ExpectedVertices: g.NumVertices(),
			Slack:            1.5,
			Seed:             7,
		},
		WindowSize: 8,
		Threshold:  0.3,
	}
	assignment, err := loom.PartitionGraph(g, loom.TemporalOrder, nil, cfg, trie)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range g.Vertices() {
		l, _ := g.Label(v)
		fmt.Printf("vertex %d (%s) -> partition %d\n", v, l, assignment.Get(v))
	}
	fmt.Println()

	// Step 3: check the motif placement. The square {1,2,5,6} answers q1;
	// LOOM should have kept it whole.
	square := []loom.VertexID{1, 2, 5, 6}
	home := assignment.Get(square[0])
	whole := true
	for _, v := range square {
		if assignment.Get(v) != home {
			whole = false
		}
	}
	fmt.Printf("q1 square %v on one partition: %v\n", square, whole)
	fmt.Println(loom.EvaluateQuality("loom", g, assignment))

	// Step 4: simulate query execution and measure the probability that a
	// traversal crosses partitions.
	c, err := loom.NewCluster(g, assignment, loom.DefaultCostModel())
	if err != nil {
		log.Fatal(err)
	}
	res := c.RunWorkloadExhaustive(workload)
	fmt.Printf("inter-partition traversal probability: %.3f\n", res.TraversalProbability())
}
