// Recommender example: tuning LOOM's window and threshold.
//
// Graph-based recommenders (paper §1, citing Huang et al.) answer
// "users-who-liked-X-also-liked-Y" with short label-constrained paths and
// stars around item hubs. This example runs that workload over a
// co-interaction graph and sweeps LOOM's two knobs — window size and motif
// frequency threshold — showing the accuracy/throughput trade-off a
// deployment would tune.
//
// Run with:
//
//	go run ./examples/recommender
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"loom"
)

func main() {
	const (
		nodes = 3000
		k     = 8
		seed  = 31
	)
	// Labels: "a" user, "b" item, "c" category, "d" brand.
	alphabet := loom.DefaultAlphabet(4)
	g, err := loom.BarabasiAlbertGraph(nodes, 3, alphabet, seed)
	if err != nil {
		log.Fatal(err)
	}

	// Recommendation queries: user->item->user paths (collaborative
	// filtering), item-category stars, user-item-category chains.
	workload, err := loom.NewWorkload(
		loom.Query{ID: "also-liked", Pattern: loom.PathQuery("a", "b", "a"), Weight: 6},
		loom.Query{ID: "item-hub", Pattern: loom.StarQuery("b", "a", "a", "a"), Weight: 3},
		loom.Query{ID: "category-walk", Pattern: loom.PathQuery("a", "b", "c"), Weight: 3},
		loom.Query{ID: "brand-affinity", Pattern: loom.PathQuery("b", "d", "b"), Weight: 2},
		loom.Query{ID: "cross-sell", Pattern: loom.PathQuery("b", "a", "b"), Weight: 4},
	)
	if err != nil {
		log.Fatal(err)
	}
	trie, err := loom.CaptureWorkload(workload, loom.CaptureOptions{Alphabet: alphabet})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("co-interaction graph: %d nodes, %d edges; %d motifs captured\n\n",
		g.NumVertices(), g.NumEdges(), trie.NumNodes())

	fmt.Printf("%-8s %-6s %-12s %-12s %-14s %-10s\n",
		"window", "T", "trav-prob", "cut", "vertices/sec", "balance")
	for _, window := range []int{32, 128, 512} {
		for _, threshold := range []float64{0.05, 0.25} {
			cfg := loom.Config{
				Partition:  loom.PartitionConfig{K: k, ExpectedVertices: nodes, Slack: 1.2, Seed: seed},
				WindowSize: window,
				Threshold:  threshold,
			}
			start := time.Now()
			a, err := loom.PartitionGraph(g, loom.RandomOrder, rand.New(rand.NewSource(seed)), cfg, trie)
			if err != nil {
				log.Fatal(err)
			}
			elapsed := time.Since(start)
			c, err := loom.NewCluster(g, a, loom.DefaultCostModel())
			if err != nil {
				log.Fatal(err)
			}
			res := c.RunWorkloadExhaustive(workload)
			fmt.Printf("%-8d %-6.2f %-12.4f %-12.4f %-14.0f %-10.3f\n",
				window, threshold,
				res.TraversalProbability(),
				loom.CutFraction(g, a),
				float64(nodes)/elapsed.Seconds(),
				loom.VertexImbalance(a))
		}
	}
	fmt.Println("\nbigger windows and lower thresholds group more motifs (better")
	fmt.Println("traversal probability) at the cost of partitioning throughput")
}
