package loom_test

import (
	"math/rand"
	"testing"

	"loom"
	"loom/internal/gen"
	"loom/internal/iso"
	"loom/internal/metrics"
	"loom/internal/partition"
	"loom/internal/query"
	"loom/internal/stream"
)

// TestFig1EndToEnd reproduces the paper's running example end to end: the
// Figure 1 graph and workload, captured into a TPSTry++, partitioned by
// LOOM into 2 parts, and queried. The q1 square {1,2,5,6} must be the
// unique q1 answer, and with motif grouping it should land on a single
// partition.
func TestFig1EndToEnd(t *testing.T) {
	g := loom.Fig1Graph()
	w := loom.Fig1Workload()

	trie, err := loom.CaptureWorkload(w, loom.CaptureOptions{Alphabet: loom.DefaultAlphabet(4)})
	if err != nil {
		t.Fatal(err)
	}
	if trie.NumNodes() == 0 {
		t.Fatal("TPSTry++ should contain motifs")
	}

	cfg := loom.Config{
		Partition:  loom.PartitionConfig{K: 2, ExpectedVertices: g.NumVertices(), Slack: 1.5, Seed: 7},
		WindowSize: 8,
		Threshold:  0.3, // every edge motif of Q clears 1/3
	}
	a, err := loom.PartitionGraph(g, loom.TemporalOrder, nil, cfg, trie)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != g.NumVertices() {
		t.Fatalf("assigned %d of %d vertices", a.Len(), g.NumVertices())
	}

	// q1's unique match must be {1,2,5,6}.
	q1 := loom.CycleQuery("a", "b", "a", "b")
	matches := iso.DistinctMatches(q1, g, iso.Options{})
	if len(matches) != 1 {
		t.Fatalf("q1 distinct matches = %d, want 1", len(matches))
	}
	wantVs := []loom.VertexID{1, 2, 5, 6}
	for i, v := range matches[0].Vertices {
		if v != wantVs[i] {
			t.Fatalf("q1 match vertices = %v, want %v", matches[0].Vertices, wantVs)
		}
	}

	// The square must not be split by LOOM.
	p0 := a.Get(1)
	for _, v := range wantVs {
		if a.Get(v) != p0 {
			t.Errorf("motif vertex %d on partition %d, want %d (square split)", v, a.Get(v), p0)
		}
	}
}

// TestLoomBeatsHashOnTraversals checks the headline C2 shape on a small
// synthetic instance: LOOM's inter-partition traversal probability for a
// motif workload is at most hash partitioning's.
func TestLoomBeatsHashOnTraversals(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	alphabet := loom.DefaultAlphabet(4)
	lab := &gen.UniformLabeler{Alphabet: alphabet, Rand: r}
	g, err := gen.BarabasiAlbert(600, 2, lab, r)
	if err != nil {
		t.Fatal(err)
	}
	w, err := query.GenerateWorkload(query.DefaultMix(12), alphabet, r)
	if err != nil {
		t.Fatal(err)
	}
	trie, err := loom.CaptureWorkload(w, loom.CaptureOptions{Alphabet: alphabet})
	if err != nil {
		t.Fatal(err)
	}

	k := 4
	cfg := loom.Config{
		Partition:  loom.PartitionConfig{K: k, ExpectedVertices: g.NumVertices(), Slack: 1.2, Seed: 1},
		WindowSize: 128,
		Threshold:  0.05,
	}
	la, err := loom.PartitionGraph(g, loom.RandomOrder, rand.New(rand.NewSource(5)), cfg, trie)
	if err != nil {
		t.Fatal(err)
	}

	hash, err := partition.NewHash(partition.Config{K: k, ExpectedVertices: g.NumVertices()})
	if err != nil {
		t.Fatal(err)
	}
	order, err := stream.VertexOrder(g, stream.TemporalOrder, nil)
	if err != nil {
		t.Fatal(err)
	}
	ha := partition.PartitionStream(g, order, hash)

	lc, err := loom.NewCluster(g, la, loom.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	hc, err := loom.NewCluster(g, ha, loom.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	lres := lc.RunWorkloadExhaustive(w)
	hres := hc.RunWorkloadExhaustive(w)

	lp, hp := lres.TraversalProbability(), hres.TraversalProbability()
	t.Logf("traversal probability: loom=%.4f hash=%.4f", lp, hp)
	if lp > hp {
		t.Errorf("LOOM traversal probability %.4f exceeds hash %.4f", lp, hp)
	}

	// Balance must stay sane despite motif grouping.
	if bal := metrics.VertexImbalance(la); bal > 1.6 {
		t.Errorf("LOOM vertex imbalance %.3f > 1.6", bal)
	}
}

// TestEmptyTrieDegradesToLDG ensures LOOM without a workload behaves and
// terminates like windowed LDG.
func TestEmptyTrieDegradesToLDG(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	lab := &gen.UniformLabeler{Alphabet: loom.DefaultAlphabet(3), Rand: r}
	g, err := gen.ErdosRenyi(200, 600, lab, r)
	if err != nil {
		t.Fatal(err)
	}
	cfg := loom.Config{
		Partition:  loom.PartitionConfig{K: 4, ExpectedVertices: 200, Slack: 1.1, Seed: 2},
		WindowSize: 32,
	}
	a, err := loom.PartitionGraph(g, loom.TemporalOrder, nil, cfg, loom.EmptyTrie())
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 200 {
		t.Fatalf("assigned %d, want 200", a.Len())
	}
}
