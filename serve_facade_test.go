package loom_test

import (
	"strings"
	"testing"

	"loom"
)

// TestServerFacade drives the online serving surface end to end through
// the public API: build a server over the Figure 1 workload, ingest the
// Figure 1 graph via the incremental codec reader, and serve lookups.
func TestServerFacade(t *testing.T) {
	s, err := loom.NewServer(loom.ServerConfig{
		Core: loom.Config{
			Partition: loom.PartitionConfig{K: 2, ExpectedVertices: 8, Slack: 1.2},
			Threshold: 0.3,
		},
		Workload: loom.Fig1Workload(),
		Alphabet: loom.DefaultAlphabet(4),
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer s.Stop()

	g := loom.Fig1Graph()
	var sb strings.Builder
	if err := loom.WriteGraphStreamed(&sb, g); err != nil {
		t.Fatalf("encode: %v", err)
	}
	src := loom.FromReader(strings.NewReader(sb.String()))
	var batch []loom.StreamElement
	for {
		el, ok := src.Next()
		if !ok {
			break
		}
		batch = append(batch, el)
	}
	if err := src.Err(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := s.IngestSync(batch); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	st := s.Stats()
	if st.Assigned != g.NumVertices() || st.K != 2 {
		t.Fatalf("stats = %+v", st)
	}
	for _, v := range g.Vertices() {
		p, ok := s.Where(v)
		if !ok || p < 0 || int(p) >= 2 {
			t.Fatalf("Where(%d) = %v,%v", v, p, ok)
		}
	}
	d := s.Route(g.Vertices()...)
	if d.Known != g.NumVertices() || d.Target < 0 {
		t.Fatalf("route = %+v", d)
	}
	if err := s.Restream(); err != nil {
		t.Fatalf("restream: %v", err)
	}
	if rep := s.Stats().LastRestream; rep == nil || rep.Trigger != "manual" {
		t.Fatalf("restream report = %+v", rep)
	}

	a, err := s.Export()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if a.Len() != g.NumVertices() {
		t.Fatalf("export len = %d", a.Len())
	}
	if frac := loom.CutFraction(g, a); frac < 0 || frac > 1 {
		t.Fatalf("cut fraction %v", frac)
	}

	s.Stop()
	if err := s.IngestSync(nil); err != loom.ErrServerStopped {
		t.Fatalf("post-stop ingest = %v, want ErrServerStopped", err)
	}
}
