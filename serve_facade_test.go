package loom_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"loom"
)

// TestServerFacade drives the online serving surface end to end through
// the public API: build a server over the Figure 1 workload, ingest the
// Figure 1 graph via the incremental codec reader, and serve lookups.
func TestServerFacade(t *testing.T) {
	s, err := loom.NewServer(loom.ServerConfig{
		Core: loom.Config{
			Partition: loom.PartitionConfig{K: 2, ExpectedVertices: 8, Slack: 1.2},
			Threshold: 0.3,
		},
		Workload: loom.Fig1Workload(),
		Alphabet: loom.DefaultAlphabet(4),
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer s.Stop()

	g := loom.Fig1Graph()
	var sb strings.Builder
	if err := loom.WriteGraphStreamed(&sb, g); err != nil {
		t.Fatalf("encode: %v", err)
	}
	src := loom.FromReader(strings.NewReader(sb.String()))
	var batch []loom.StreamElement
	for {
		el, ok := src.Next()
		if !ok {
			break
		}
		batch = append(batch, el)
	}
	if err := src.Err(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := s.IngestSync(batch); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	st := s.Stats()
	if st.Assigned != g.NumVertices() || st.K != 2 {
		t.Fatalf("stats = %+v", st)
	}
	for _, v := range g.Vertices() {
		p, ok := s.Where(v)
		if !ok || p < 0 || int(p) >= 2 {
			t.Fatalf("Where(%d) = %v,%v", v, p, ok)
		}
	}
	d := s.Route(g.Vertices()...)
	if d.Known != g.NumVertices() || d.Target < 0 {
		t.Fatalf("route = %+v", d)
	}
	if err := s.Restream(); err != nil {
		t.Fatalf("restream: %v", err)
	}
	if rep := s.Stats().LastRestream; rep == nil || rep.Trigger != "manual" {
		t.Fatalf("restream report = %+v", rep)
	}

	a, err := s.Export()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if a.Len() != g.NumVertices() {
		t.Fatalf("export len = %d", a.Len())
	}
	if frac := loom.CutFraction(g, a); frac < 0 || frac > 1 {
		t.Fatalf("cut fraction %v", frac)
	}

	s.Stop()
	if err := s.IngestSync(nil); err != loom.ErrServerStopped {
		t.Fatalf("post-stop ingest = %v, want ErrServerStopped", err)
	}
}

// TestServerBinaryIngestFacade drives the binary wire protocol through
// the public API: encode the Figure 1 graph as frames with a
// FrameWriter, ingest them with Server.IngestFrames, and check the
// placements match a text-fed twin.
func TestServerBinaryIngestFacade(t *testing.T) {
	cfg := loom.ServerConfig{
		Core: loom.Config{
			Partition: loom.PartitionConfig{K: 2, ExpectedVertices: 8, Slack: 1.2},
			Threshold: 0.3,
		},
		Workload: loom.Fig1Workload(),
		Alphabet: loom.DefaultAlphabet(4),
	}
	g := loom.Fig1Graph()
	var sb strings.Builder
	if err := loom.WriteGraphStreamed(&sb, g); err != nil {
		t.Fatalf("encode: %v", err)
	}
	src := loom.FromReader(strings.NewReader(sb.String()))
	var elems []loom.StreamElement
	for {
		el, ok := src.Next()
		if !ok {
			break
		}
		elems = append(elems, el)
	}
	if err := src.Err(); err != nil {
		t.Fatalf("decode: %v", err)
	}

	text, err := loom.NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer(text): %v", err)
	}
	defer text.Stop()
	if err := text.IngestSync(elems); err != nil {
		t.Fatalf("text ingest: %v", err)
	}
	if err := text.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	bin, err := loom.NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer(binary): %v", err)
	}
	defer bin.Stop()
	var frames bytes.Buffer
	fw := loom.NewFrameWriter(&frames)
	if err := fw.WriteBatch(elems); err != nil {
		t.Fatalf("WriteBatch: %v", err)
	}
	res, err := bin.IngestFrames(bytes.NewReader(frames.Bytes()))
	if err != nil {
		t.Fatalf("IngestFrames: %v", err)
	}
	if err := res.Err(); err != nil {
		t.Fatalf("frame error: %v", err)
	}
	if res.Frames != 1 || res.Elements != len(elems) {
		t.Fatalf("FrameIngest = %+v, want 1 frame, %d elements", res, len(elems))
	}
	if err := bin.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, v := range g.Vertices() {
		tp, tok := text.Where(v)
		bp, bok := bin.Where(v)
		if !tok || !bok || tp != bp {
			t.Fatalf("Where(%d): text %v,%v binary %v,%v", v, tp, tok, bp, bok)
		}
	}

	// A poisoned frame is a typed refusal that applies nothing.
	var bad *loom.BadFrameError
	if _, err := bin.IngestFrames(strings.NewReader("not a frame")); err == nil {
		t.Fatal("garbage frames accepted")
	} else if !errors.As(err, &bad) {
		t.Fatalf("garbage frames error = %T %v, want BadFrameError", err, err)
	}
	if loom.BinaryContentType != "application/x-loom-frame" {
		t.Fatalf("BinaryContentType = %q", loom.BinaryContentType)
	}
}
