package loom_test

// Tests for the public façade: every exported helper in loom.go should be
// exercised here, since downstream users touch the library through it.

import (
	"math/rand"
	"testing"

	"loom"
)

func TestDefaultAlphabetFacade(t *testing.T) {
	a := loom.DefaultAlphabet(4)
	if len(a) != 4 || a[0] != "a" || a[3] != "d" {
		t.Fatalf("alphabet = %v", a)
	}
}

func TestQueryBuilders(t *testing.T) {
	p := loom.PathQuery("a", "b", "c")
	if p.NumVertices() != 3 || p.NumEdges() != 2 {
		t.Fatal("PathQuery shape wrong")
	}
	c := loom.CycleQuery("a", "b", "c")
	if c.NumEdges() != 3 {
		t.Fatal("CycleQuery shape wrong")
	}
	s := loom.StarQuery("h", "x", "y")
	if s.Degree(0) != 2 {
		t.Fatal("StarQuery shape wrong")
	}
	if loom.NewGraph().NumVertices() != 0 {
		t.Fatal("NewGraph should be empty")
	}
}

func TestCaptureWorkloadWithoutAlphabet(t *testing.T) {
	trie, err := loom.CaptureWorkload(loom.Fig1Workload(), loom.CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if trie.NumNodes() != 14 {
		t.Fatalf("nodes = %d, want 14", trie.NumNodes())
	}
}

func TestEmptyTrieUsable(t *testing.T) {
	trie := loom.EmptyTrie()
	if trie.NumNodes() != 0 {
		t.Fatal("empty trie should have no nodes")
	}
}

func TestGenerators(t *testing.T) {
	alphabet := loom.DefaultAlphabet(3)
	ba, err := loom.BarabasiAlbertGraph(200, 2, alphabet, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ba.NumVertices() != 200 {
		t.Fatalf("|V| = %d", ba.NumVertices())
	}
	cg, err := loom.CommunityGraph(120, 4, alphabet, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cg.NumVertices() != 120 {
		t.Fatalf("|V| = %d", cg.NumVertices())
	}
}

func TestDefaultWorkloadFacade(t *testing.T) {
	w, err := loom.DefaultWorkload(8, loom.DefaultAlphabet(3), 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 8 {
		t.Fatalf("len = %d", w.Len())
	}
}

func TestBaselineWrappers(t *testing.T) {
	alphabet := loom.DefaultAlphabet(3)
	g, err := loom.BarabasiAlbertGraph(300, 2, alphabet, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := loom.PartitionConfig{K: 4, ExpectedVertices: 300, Slack: 1.1, Seed: 3}

	ha, err := loom.PartitionWithHash(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	la, err := loom.PartitionWithLDG(g, loom.RandomOrder, rand.New(rand.NewSource(3)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := loom.PartitionWithFennel(g, loom.RandomOrder, rand.New(rand.NewSource(3)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, a := range map[string]*loom.Assignment{"hash": ha, "ldg": la, "fennel": fa} {
		if a.Len() != 300 {
			t.Errorf("%s assigned %d, want 300", name, a.Len())
		}
		if f := loom.CutFraction(g, a); f < 0 || f > 1 {
			t.Errorf("%s cut fraction %v out of range", name, f)
		}
		if b := loom.VertexImbalance(a); b < 1 {
			t.Errorf("%s imbalance %v < 1", name, b)
		}
	}
	// Structure-aware LDG must beat structure-blind hash.
	if loom.CutFraction(g, la) >= loom.CutFraction(g, ha) {
		t.Error("LDG should cut fewer edges than hash")
	}
}

func TestStreamFacade(t *testing.T) {
	g := loom.Fig1Graph()
	elems, err := loom.StreamFromGraph(g, loom.AdversarialOrder, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) != g.NumVertices()+g.NumEdges() {
		t.Fatalf("elements = %d", len(elems))
	}
	src := loom.NewSliceSource(elems)
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	if n != len(elems) {
		t.Fatalf("source yielded %d of %d", n, len(elems))
	}
}

func TestEvaluateQualityFacade(t *testing.T) {
	g := loom.Fig1Graph()
	a, err := loom.PartitionWithHash(g, loom.PartitionConfig{K: 2, ExpectedVertices: 8})
	if err != nil {
		t.Fatal(err)
	}
	q := loom.EvaluateQuality("hash", g, a)
	if q.Partitioner != "hash" || q.Vertices != 8 {
		t.Fatalf("quality = %+v", q)
	}
}

func TestMultilevelFacade(t *testing.T) {
	g, err := loom.CommunityGraph(400, 4, loom.DefaultAlphabet(2), 9)
	if err != nil {
		t.Fatal(err)
	}
	a, err := loom.PartitionWithMultilevel(g, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 400 {
		t.Fatalf("assigned %d", a.Len())
	}
}

func TestStoreFacade(t *testing.T) {
	g := loom.Fig1Graph()
	a, err := loom.PartitionWithHash(g, loom.PartitionConfig{K: 2, ExpectedVertices: 8})
	if err != nil {
		t.Fatal(err)
	}
	st, err := loom.DeployStore(g, a)
	if err != nil {
		t.Fatal(err)
	}
	e := loom.NewStoreEngine(st)
	if _, err := e.KHop(1, 2); err != nil {
		t.Fatal(err)
	}
	adv := loom.NewReplicationAdvisor(st)
	e.SetObserver(adv.Observe)
	if _, err := e.KHop(1, 3); err != nil {
		t.Fatal(err)
	}
	// The engine ran; stats must be self-consistent.
	if e.Stats().LocalReads == 0 {
		t.Fatal("expected local reads")
	}
}

func TestLiveSourceThroughLoom(t *testing.T) {
	// The paper's target setting end to end: a live stochastic stream
	// consumed by LOOM as it is generated.
	alphabet := loom.DefaultAlphabet(4)
	w, err := loom.DefaultWorkload(8, alphabet, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	trie, err := loom.CaptureWorkload(w, loom.CaptureOptions{Alphabet: alphabet})
	if err != nil {
		t.Fatal(err)
	}
	src, err := loom.NewLiveSource(500, 2, alphabet, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := loom.New(loom.Config{
		Partition:  loom.PartitionConfig{K: 4, ExpectedVertices: 500, Slack: 1.2, Seed: 3},
		WindowSize: 64,
		Threshold:  0.05,
	}, trie)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 500 {
		t.Fatalf("assigned %d, want 500", a.Len())
	}
}

func TestRebalanceFacade(t *testing.T) {
	g, err := loom.BarabasiAlbertGraph(200, 2, loom.DefaultAlphabet(2), 5)
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately lopsided: everything on partition 0 of 4.
	a, err := loom.PartitionWithHash(g, loom.PartitionConfig{K: 4, ExpectedVertices: 200})
	if err != nil {
		t.Fatal(err)
	}
	lop := a.Clone()
	for _, v := range g.Vertices() {
		if err := lop.Set(v, 0); err != nil {
			t.Fatal(err)
		}
	}
	res := loom.Rebalance(g, lop, 1.1, 500)
	if res.Moves == 0 {
		t.Fatal("rebalance should move vertices")
	}
	if loom.VertexImbalance(lop) > 1.15 {
		t.Fatalf("still unbalanced: %.3f", loom.VertexImbalance(lop))
	}
}

func TestFutureWorkOptionsThroughFacade(t *testing.T) {
	g := loom.Fig1Graph()
	trie, err := loom.CaptureWorkload(loom.Fig1Workload(), loom.CaptureOptions{Alphabet: loom.DefaultAlphabet(4)})
	if err != nil {
		t.Fatal(err)
	}
	cfg := loom.Config{
		Partition:          loom.PartitionConfig{K: 2, ExpectedVertices: 8, Slack: 1.5, Seed: 1},
		WindowSize:         8,
		Threshold:          0.3,
		TraversalWeighting: true,
		MaxGroupSize:       3,
	}
	a, err := loom.PartitionGraph(g, loom.TemporalOrder, nil, cfg, trie)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 8 {
		t.Fatalf("assigned %d", a.Len())
	}
}
