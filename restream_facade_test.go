package loom_test

import (
	"math/rand"
	"testing"

	"loom"
)

// TestRestreamFacade exercises loom.Restream end to end: ReLDG over a
// community graph must beat the single-pass LDG baseline at equal k while
// reporting shrinking migration.
func TestRestreamFacade(t *testing.T) {
	const n, k, seed = 800, 4, 7
	alphabet := loom.DefaultAlphabet(4)
	g, err := loom.CommunityGraph(n, k, alphabet, seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := loom.PartitionConfig{K: k, ExpectedVertices: n, Slack: 1.1, Seed: seed}
	single, err := loom.PartitionWithLDG(g, loom.RandomOrder, rand.New(rand.NewSource(seed)), cfg)
	if err != nil {
		t.Fatal(err)
	}

	res, err := loom.Restream(g, nil, 3, loom.RestreamOptions{
		Priority:  loom.RestreamAmbivalence,
		Partition: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Len() != n {
		t.Fatalf("restream covered %d of %d vertices", res.Final.Len(), n)
	}
	if got, base := loom.CutFraction(g, res.Final), loom.CutFraction(g, single); got >= base {
		t.Fatalf("restreamed cut %.4f not below single-pass LDG %.4f", got, base)
	}
	if bal := loom.VertexImbalance(res.Final); bal > cfg.Slack+1e-9 {
		t.Fatalf("imbalance %.4f exceeds slack %.2f", bal, cfg.Slack)
	}
	if res.Passes[2].MigrationFraction >= res.Passes[1].MigrationFraction {
		t.Errorf("migration did not decrease: %.4f -> %.4f",
			res.Passes[1].MigrationFraction, res.Passes[2].MigrationFraction)
	}
}

// TestRestreamFacadeFromPrior refines an existing hash assignment; K is
// inferred from the prior.
func TestRestreamFacadeFromPrior(t *testing.T) {
	const n, k, seed = 400, 4, 3
	g, err := loom.CommunityGraph(n, k, loom.DefaultAlphabet(4), seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := loom.PartitionConfig{K: k, ExpectedVertices: n, Slack: 1.2, Seed: seed}
	prior, err := loom.PartitionWithHash(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := loom.Restream(g, prior, 2, loom.RestreamOptions{
		Heuristic: "fennel",
		Priority:  loom.RestreamCutDegree,
		Partition: loom.PartitionConfig{ExpectedVertices: n, Slack: 1.2, Seed: seed},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.K() != k {
		t.Fatalf("K not inferred from prior: got %d", res.Final.K())
	}
	if got, base := loom.CutFraction(g, res.Final), loom.CutFraction(g, prior); got >= base {
		t.Fatalf("refined cut %.4f not below hash prior %.4f", got, base)
	}
	if frac := loom.MigrationFraction(prior, res.Final); frac <= 0 {
		t.Fatalf("MigrationFraction = %v, want > 0", frac)
	}
}

// TestRestreamLOOMFacade runs the workload-aware restream through the
// facade.
func TestRestreamLOOMFacade(t *testing.T) {
	const n, k, seed = 400, 4, 5
	alphabet := loom.DefaultAlphabet(4)
	g, err := loom.CommunityGraph(n, k, alphabet, seed)
	if err != nil {
		t.Fatal(err)
	}
	w, err := loom.DefaultWorkload(8, alphabet, 0, seed)
	if err != nil {
		t.Fatal(err)
	}
	trie, err := loom.CaptureWorkload(w, loom.CaptureOptions{Alphabet: alphabet})
	if err != nil {
		t.Fatal(err)
	}
	cfg := loom.Config{
		Partition:  loom.PartitionConfig{K: k, ExpectedVertices: n, Slack: 1.2, Seed: seed},
		WindowSize: 64,
		Threshold:  0.05,
	}
	res, err := loom.RestreamLOOM(g, nil, 2, cfg, trie, loom.RestreamDegree)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Len() != n {
		t.Fatalf("covered %d of %d vertices", res.Final.Len(), n)
	}
	if res.Passes[1].Migrated == 0 {
		t.Error("pass 2 migrated nothing")
	}
}

func TestRestreamFacadeErrors(t *testing.T) {
	g, err := loom.CommunityGraph(100, 2, loom.DefaultAlphabet(2), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loom.Restream(g, nil, 2, loom.RestreamOptions{
		Heuristic: "nope",
		Partition: loom.PartitionConfig{K: 2},
	}); err == nil {
		t.Error("unknown heuristic should error")
	}
	if _, err := loom.Restream(g, nil, 0, loom.RestreamOptions{
		Partition: loom.PartitionConfig{K: 2},
	}); err == nil {
		t.Error("zero passes should error")
	}
	if _, err := loom.ParseRestreamPriority("degree"); err != nil {
		t.Errorf("ParseRestreamPriority(degree): %v", err)
	}
	if _, err := loom.ParseRestreamPriority("bogus"); err == nil {
		t.Error("bogus priority should error")
	}
}
