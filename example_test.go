package loom_test

// Godoc examples for the public API. Each runs as a test and its output is
// verified, so the documentation cannot rot.

import (
	"fmt"

	"loom"
)

// ExampleCaptureWorkload shows how a query workload is summarised into a
// TPSTry++ and which motifs clear a frequency threshold.
func ExampleCaptureWorkload() {
	workload := loom.Fig1Workload()
	trie, err := loom.CaptureWorkload(workload, loom.CaptureOptions{
		Alphabet: loom.DefaultAlphabet(4),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("motifs:", trie.NumNodes())
	fmt.Println("frequent at T=0.5:", len(trie.FrequentMotifs(0.5)))
	fmt.Printf("P(edge ab in a random query) = %.2f\n", trie.PEdge("a", "b"))
	// Output:
	// motifs: 14
	// frequent at T=0.5: 3
	// P(edge ab in a random query) = 1.00
}

// ExamplePartitionGraph partitions the paper's example graph with LOOM and
// verifies the q1 square stays on one partition.
func ExamplePartitionGraph() {
	g := loom.Fig1Graph()
	trie, err := loom.CaptureWorkload(loom.Fig1Workload(), loom.CaptureOptions{
		Alphabet: loom.DefaultAlphabet(4),
	})
	if err != nil {
		panic(err)
	}
	cfg := loom.Config{
		Partition:  loom.PartitionConfig{K: 2, ExpectedVertices: 8, Slack: 1.5, Seed: 7},
		WindowSize: 8,
		Threshold:  0.3,
	}
	a, err := loom.PartitionGraph(g, loom.TemporalOrder, nil, cfg, trie)
	if err != nil {
		panic(err)
	}
	square := []loom.VertexID{1, 2, 5, 6}
	whole := true
	for _, v := range square {
		if a.Get(v) != a.Get(square[0]) {
			whole = false
		}
	}
	fmt.Println("assigned:", a.Len())
	fmt.Println("square kept whole:", whole)
	// Output:
	// assigned: 8
	// square kept whole: true
}

// ExampleNewCluster measures the probability that executing the workload
// crosses partition boundaries under a given placement.
func ExampleNewCluster() {
	g := loom.Fig1Graph()
	// A deliberately motif-aware split: the q1 square on partition 0.
	a, err := loom.PartitionWithHash(g, loom.PartitionConfig{K: 2, ExpectedVertices: 8})
	if err != nil {
		panic(err)
	}
	c, err := loom.NewCluster(g, a, loom.DefaultCostModel())
	if err != nil {
		panic(err)
	}
	res := c.RunWorkloadExhaustive(loom.Fig1Workload())
	fmt.Println("probability in [0,1]:", res.TraversalProbability() >= 0 && res.TraversalProbability() <= 1)
	// Output:
	// probability in [0,1]: true
}

// ExampleNewWorkload builds a custom fraud-detection workload.
func ExampleNewWorkload() {
	w, err := loom.NewWorkload(
		loom.Query{ID: "ring", Pattern: loom.CycleQuery("a", "b", "c"), Weight: 3},
		loom.Query{ID: "probe", Pattern: loom.PathQuery("a", "b"), Weight: 1},
	)
	if err != nil {
		panic(err)
	}
	fmt.Println("queries:", w.Len())
	fmt.Printf("ring frequency: %.2f\n", w.Frequency(0))
	// Output:
	// queries: 2
	// ring frequency: 0.75
}
